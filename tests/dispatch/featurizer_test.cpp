#include "dispatch/featurizer.hpp"

#include <gtest/gtest.h>

namespace mobirescue::dispatch {
namespace {

class FeaturizerTest : public ::testing::Test {
 protected:
  FeaturizerTest() {
    roadnet::CityConfig config;
    config.grid_width = 8;
    config.grid_height = 8;
    city_ = roadnet::BuildCity(config);
    cond_ = roadnet::NetworkCondition(city_.network.num_segments());
  }

  sim::TeamView TeamAt(roadnet::LandmarkId lm) {
    sim::TeamView v;
    v.id = 0;
    v.at = lm;
    v.capacity = 5;
    v.mode = sim::TeamMode::kIdle;
    return v;
  }

  roadnet::City city_;
  roadnet::NetworkCondition cond_;
};

TEST_F(FeaturizerTest, CandidatesRankedByDemand) {
  DispatchFeaturizer featurizer(city_, {});
  predict::Distribution demand = {{0, 5}, {4, 9}, {8, 1}};
  const RoundData round = featurizer.PrepareRound(demand, cond_);
  ASSERT_EQ(round.candidates.size(), 3u);
  EXPECT_EQ(round.candidates[0], 4);  // highest demand first
  EXPECT_EQ(round.candidates[1], 0);
  EXPECT_EQ(round.candidates[2], 8);
  EXPECT_DOUBLE_EQ(round.total_demand, 15.0);
  EXPECT_EQ(round.trees.size(), 4u);  // +1 for the depot
}

TEST_F(FeaturizerTest, TopKCapsSpeculativeCandidates) {
  FeaturizerConfig config;
  config.top_k = 2;
  DispatchFeaturizer featurizer(city_, config);
  predict::Distribution demand = {{0, 5}, {4, 9}, {8, 1}, {12, 2}};
  const RoundData round = featurizer.PrepareRound(demand, cond_);
  EXPECT_EQ(round.candidates.size(), 2u);
}

TEST_F(FeaturizerTest, MustIncludeBypassesTopK) {
  FeaturizerConfig config;
  config.top_k = 1;
  DispatchFeaturizer featurizer(city_, config);
  predict::Distribution demand = {{0, 5}, {4, 9}};
  const RoundData round = featurizer.PrepareRound(demand, cond_, {8, 12});
  // 2 must-include + 1 speculative.
  EXPECT_EQ(round.candidates.size(), 3u);
  EXPECT_EQ(round.candidates[0], 8);
  EXPECT_EQ(round.candidates[1], 12);
  EXPECT_TRUE(round.pending.count(8));
  EXPECT_TRUE(round.pending.count(12));
  EXPECT_FALSE(round.pending.count(4));
}

TEST_F(FeaturizerTest, FeatureVectorShapeAndSemantics) {
  DispatchFeaturizer featurizer(city_, {});
  predict::Distribution demand = {{0, 8}};
  const RoundData round = featurizer.PrepareRound(demand, cond_, {0});
  const sim::TeamView team = TeamAt(city_.network.segment(0).from);
  const auto f = featurizer.Features(round, team, 0);
  ASSERT_EQ(f.size(), DispatchFeaturizer::kFeatureDim);
  EXPECT_NEAR(f[0], 0.0, 1e-9);   // already at the candidate
  EXPECT_DOUBLE_EQ(f[1], 1.0);    // demand 8 / norm 8
  EXPECT_DOUBLE_EQ(f[4], 0.0);    // not depot
  EXPECT_DOUBLE_EQ(f[5], 1.0);    // idle
  EXPECT_DOUBLE_EQ(f[8], 1.0);    // bias
  EXPECT_DOUBLE_EQ(f[10], 1.0);   // pending flag

  const auto depot = featurizer.Features(round, team, round.candidates.size());
  EXPECT_DOUBLE_EQ(depot[4], 1.0);
  EXPECT_DOUBLE_EQ(depot[1], 0.0);
  EXPECT_DOUBLE_EQ(depot[10], 0.0);
}

TEST_F(FeaturizerTest, CompetitionCountsCloserTeams) {
  DispatchFeaturizer featurizer(city_, {});
  predict::Distribution demand = {{0, 4}};
  const RoundData round = featurizer.PrepareRound(demand, cond_);
  const roadnet::LandmarkId near = city_.network.segment(0).from;
  // Find a far landmark.
  roadnet::LandmarkId far = near;
  double best = 0.0;
  for (const roadnet::Landmark& lm : city_.network.landmarks()) {
    const double d = util::ApproxDistanceMeters(
        lm.pos, city_.network.landmark(near).pos);
    if (d > best) {
      best = d;
      far = lm.id;
    }
  }
  std::vector<sim::TeamView> teams = {TeamAt(far), TeamAt(near)};
  teams[0].id = 0;
  teams[1].id = 1;
  const auto f_far = featurizer.Features(round, teams[0], 0, &teams);
  const auto f_near = featurizer.Features(round, teams[1], 0, &teams);
  EXPECT_GT(f_far[9], f_near[9]);
  EXPECT_DOUBLE_EQ(f_near[9], 0.0);
}

TEST_F(FeaturizerTest, TeamActionSetNearestPlusDepot) {
  FeaturizerConfig config;
  config.per_team_k = 2;
  DispatchFeaturizer featurizer(city_, config);
  predict::Distribution demand;
  for (roadnet::SegmentId s = 0; s < 20; ++s) demand[s] = 1;
  const RoundData round = featurizer.PrepareRound(demand, cond_);
  const sim::TeamView team = TeamAt(0);
  const auto set = featurizer.TeamActionSet(round, team);
  ASSERT_EQ(set.size(), 3u);  // 2 nearest + depot
  EXPECT_TRUE(round.IsDepotAction(set.back()));
  // The two non-depot entries must be sorted by travel time.
  const double t0 = round.trees[set[0]]->time_s[team.at];
  const double t1 = round.trees[set[1]]->time_s[team.at];
  EXPECT_LE(t0, t1);
}

TEST_F(FeaturizerTest, ClosedSegmentsStillCandidates) {
  DispatchFeaturizer featurizer(city_, {});
  predict::Distribution demand = {{0, 5}};
  cond_.Close(0);
  const RoundData round = featurizer.PrepareRound(demand, cond_);
  ASSERT_EQ(round.candidates.size(), 1u);
  EXPECT_EQ(round.candidates[0], 0);
}

}  // namespace
}  // namespace mobirescue::dispatch
