// Behavioural tests for the MobiRescue dispatcher's decision layer: the
// joint-action assignment, pending coverage, the swing re-target and the
// stand-down behaviour. Uses a real (small) world + SVM but a fresh agent,
// exercising the prior-anchored policy deterministically.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/world.hpp"
#include "dispatch/mobirescue_dispatcher.hpp"
#include "sim/population_tracker.hpp"

namespace mobirescue::dispatch {
namespace {

class MobiRescueDispatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::WorldConfig config;
    config.city.grid_width = 10;
    config.city.grid_height = 10;
    config.city.num_hospitals = 4;
    config.trace.population.num_people = 250;
    world_ = new core::World(core::BuildWorld(config));
    svm_ = core::TrainSvmPredictor(*world_).release();
  }
  static void TearDownTestSuite() {
    delete svm_;
    delete world_;
  }

  void SetUp() override {
    const int day = world_->eval.spec.eval_day;
    tracker_ = std::make_unique<sim::PopulationTracker>(
        sim::DaySlice(world_->eval.trace.records, day));
    rl::DqnConfig dqn;
    dqn.feature_dim = DispatchFeaturizer::kFeatureDim;
    agent_ = std::make_shared<rl::DqnAgent>(dqn);
    cond_ = world_->eval.flood->NetworkConditionAt(
        world_->city->network,
        (day * 24 + 12) * util::kSecondsPerHour);
    free_cond_ =
        roadnet::NetworkCondition(world_->city->network.num_segments());
  }

  MobiRescueDispatcher MakeDispatcher(MobiRescueConfig config = {}) {
    config.training = false;
    config.prior_weight = 1.0;  // fresh agent: the prior carries the policy
    return MobiRescueDispatcher(*world_->city, *svm_, *tracker_,
                                *world_->index, agent_,
                                world_->eval.spec.eval_day *
                                    util::kSecondsPerDay,
                                config);
  }

  sim::DispatchContext Context(int teams) {
    sim::DispatchContext ctx;
    ctx.now = 12 * 3600.0;
    for (int k = 0; k < teams; ++k) {
      sim::TeamView v;
      v.id = k;
      v.at = world_->city->hospitals[static_cast<std::size_t>(k) %
                                     world_->city->hospitals.size()];
      v.capacity = 5;
      v.mode = sim::TeamMode::kIdle;
      ctx.teams.push_back(v);
    }
    ctx.condition = &cond_;
    ctx.free_condition = &free_cond_;
    return ctx;
  }

  static core::World* world_;
  static predict::SvmRequestPredictor* svm_;
  std::unique_ptr<sim::PopulationTracker> tracker_;
  std::shared_ptr<rl::DqnAgent> agent_;
  roadnet::NetworkCondition cond_, free_cond_;
};

core::World* MobiRescueDispatcherTest::world_ = nullptr;
predict::SvmRequestPredictor* MobiRescueDispatcherTest::svm_ = nullptr;

TEST_F(MobiRescueDispatcherTest, SubSecondLatencyClaim) {
  auto dispatcher = MakeDispatcher();
  const auto decision = dispatcher.Decide(Context(10));
  EXPECT_LT(decision.compute_latency_s, 0.5);  // paper Section V-C3
}

TEST_F(MobiRescueDispatcherTest, PendingRequestGetsCovered) {
  auto dispatcher = MakeDispatcher();
  auto ctx = Context(6);
  const roadnet::SegmentId seg = 3;
  ctx.pending.push_back({0, seg, 0.0});
  const auto decision = dispatcher.Decide(ctx);
  int covering = 0;
  for (const auto& a : decision.actions) {
    if (a.kind == sim::ActionKind::kGoto && a.target == seg) ++covering;
  }
  // At least one team claims the request; SVM-predicted people on the same
  // segment can justify a second vehicle, but never the whole fleet.
  EXPECT_GE(covering, 1);
  EXPECT_LE(covering, 3);
}

TEST_F(MobiRescueDispatcherTest, DistinctPendingSpreadAcrossTeams) {
  auto dispatcher = MakeDispatcher();
  auto ctx = Context(8);
  std::vector<roadnet::SegmentId> segs = {3, 40, 90, 150};
  int id = 0;
  for (roadnet::SegmentId s : segs) ctx.pending.push_back({id++, s, 0.0});
  const auto decision = dispatcher.Decide(ctx);
  std::set<roadnet::SegmentId> covered;
  for (const auto& a : decision.actions) {
    if (a.kind == sim::ActionKind::kGoto) covered.insert(a.target);
  }
  // Nearly all pending segments are covered by someone (a pending spot so
  // remote that serving it scores below standing down may be deferred —
  // that is the gamma term of Eq. (5) at work).
  int hit = 0;
  for (roadnet::SegmentId s : segs) hit += covered.count(s) ? 1 : 0;
  EXPECT_GE(hit, 3);
}

TEST_F(MobiRescueDispatcherTest, DeliveringTeamsAreNotRetasked) {
  auto dispatcher = MakeDispatcher();
  auto ctx = Context(4);
  ctx.teams[1].mode = sim::TeamMode::kToHospital;
  ctx.pending.push_back({0, 3, 0.0});
  const auto decision = dispatcher.Decide(ctx);
  EXPECT_EQ(decision.actions[1].kind, sim::ActionKind::kKeep);
}

TEST_F(MobiRescueDispatcherTest, ServingTeamSwingsToNearbyPending) {
  MobiRescueConfig config;
  config.retarget_margin_s = 60.0;
  auto dispatcher = MakeDispatcher(config);
  auto ctx = Context(1);
  // The team is serving a far target with a long remaining leg; a pending
  // request sits on a segment leaving its current landmark.
  ctx.teams[0].mode = sim::TeamMode::kToTarget;
  const auto out = world_->city->network.OutSegments(ctx.teams[0].at);
  ASSERT_FALSE(out.empty());
  roadnet::SegmentId nearby = roadnet::kInvalidSegment;
  for (roadnet::SegmentId s : out) {
    if (cond_.IsOpen(s)) nearby = s;
  }
  if (nearby == roadnet::kInvalidSegment) GTEST_SKIP() << "flooded corner";
  ctx.teams[0].target_segment = 200;
  ctx.teams[0].leg_remaining_s = 3000.0;
  ctx.pending.push_back({0, nearby, 0.0});
  const auto decision = dispatcher.Decide(ctx);
  EXPECT_EQ(decision.actions[0].kind, sim::ActionKind::kGoto);
  EXPECT_EQ(decision.actions[0].target, nearby);
}

TEST_F(MobiRescueDispatcherTest, ServingTeamKeepsLegWhenNoBetterOption) {
  auto dispatcher = MakeDispatcher();
  auto ctx = Context(1);
  ctx.teams[0].mode = sim::TeamMode::kToTarget;
  ctx.teams[0].target_segment = 3;
  ctx.teams[0].leg_remaining_s = 30.0;  // nearly there
  const auto decision = dispatcher.Decide(ctx);
  EXPECT_EQ(decision.actions[0].kind, sim::ActionKind::kKeep);
}

TEST_F(MobiRescueDispatcherTest, DecisionsAreDeterministic) {
  auto d1 = MakeDispatcher();
  auto d2 = MakeDispatcher();
  auto ctx = Context(6);
  ctx.pending.push_back({0, 3, 0.0});
  const auto a = d1.Decide(ctx);
  const auto b = d2.Decide(ctx);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.actions[i].kind, b.actions[i].kind);
    EXPECT_EQ(a.actions[i].target, b.actions[i].target);
  }
}

}  // namespace
}  // namespace mobirescue::dispatch
