#include "analysis/dataset_analysis.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"

namespace mobirescue::analysis {
namespace {

/// Section III reproduction sanity: the dataset-measurement pipeline must
/// recover the paper's qualitative observations from the synthetic trace.
class AnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::WorldConfig config;
    config.city.grid_width = 14;
    config.city.grid_height = 14;
    config.city.num_hospitals = 6;
    config.trace.population.num_people = 700;
    world_ = new core::World(core::BuildWorld(config));
    analysis_ = new DatasetAnalysis(*world_->city, *world_->eval.field,
                                    *world_->eval.flood, world_->eval.spec,
                                    world_->eval.trace);
  }
  static void TearDownTestSuite() {
    delete analysis_;
    delete world_;
  }

  static core::World* world_;
  static DatasetAnalysis* analysis_;
};

core::World* AnalysisTest::world_ = nullptr;
DatasetAnalysis* AnalysisTest::analysis_ = nullptr;

TEST_F(AnalysisTest, CleaningKeepsMostRecords) {
  const auto& stats = analysis_->cleaning_stats();
  EXPECT_GT(stats.kept, stats.input * 9 / 10);
}

TEST_F(AnalysisTest, RegionFactorsCoverSevenRegions) {
  const auto factors = analysis_->RegionFactors();
  ASSERT_EQ(factors.size(), static_cast<std::size_t>(roadnet::kNumRegions));
  for (const RegionFactorSummary& s : factors) {
    EXPECT_GT(s.precipitation_mm, 0.0);
    EXPECT_GT(s.wind_mph, 0.0);
    EXPECT_GT(s.altitude_m, 100.0);
  }
}

TEST_F(AnalysisTest, TableOneSignsMatchPaper) {
  // Paper Table I: flow rate correlates negatively with precipitation and
  // wind, positively with altitude.
  const CorrelationTable table = analysis_->FactorFlowCorrelation();
  EXPECT_LT(table.precipitation, -0.3);
  EXPECT_LT(table.wind, 0.0);
  EXPECT_GT(table.altitude, 0.3);
}

TEST_F(AnalysisTest, FlowDropsDuringDisaster) {
  // Paper Fig. 5: during-disaster flow far below before-disaster flow.
  const auto& spec = world_->eval.spec;
  const int storm_day = util::DayIndex(spec.storm.storm_peak_s);
  double before = 0.0, during = 0.0;
  for (roadnet::RegionId r = 1; r <= roadnet::kNumRegions; ++r) {
    before += analysis_->RegionDayAverage(r, spec.before_day);
    during += analysis_->RegionDayAverage(r, storm_day);
  }
  EXPECT_LT(during, 0.5 * before);
}

TEST_F(AnalysisTest, FlowPartiallyRecoversAfter) {
  const auto& spec = world_->eval.spec;
  const int storm_day = util::DayIndex(spec.storm.storm_peak_s);
  const int after = spec.window_days - 1;  // well after recession started
  double during = 0.0, recovered = 0.0, before = 0.0;
  for (roadnet::RegionId r = 1; r <= roadnet::kNumRegions; ++r) {
    during += analysis_->RegionDayAverage(r, storm_day);
    recovered += analysis_->RegionDayAverage(r, after);
    before += analysis_->RegionDayAverage(r, spec.before_day);
  }
  EXPECT_GT(recovered, during);
  EXPECT_LT(recovered, before);
}

TEST_F(AnalysisTest, HospitalDeliveriesJumpWithTheStorm) {
  // Paper Fig. 6: a steep jump at the start of hurricane impact.
  const auto per_day = analysis_->DeliveriesPerDay(/*flood_only=*/true);
  const auto& spec = world_->eval.spec;
  const int storm_day = util::DayIndex(spec.storm.storm_begin_s);
  int before = 0, during = 0;
  for (int d = 0; d < storm_day; ++d) before += per_day[d];
  for (int d = storm_day; d < spec.window_days; ++d) during += per_day[d];
  EXPECT_GT(during, 5 * std::max(1, before));
}

TEST_F(AnalysisTest, DetectorFindsMostGroundTruthRescues) {
  // The Section III-B2 labelling pipeline should recover a large share of
  // the generator's delivered rescues.
  int delivered_truth = 0;
  for (const mobility::RescueEvent& ev : world_->eval.trace.rescues) {
    if (ev.delivered) ++delivered_truth;
  }
  const auto flood_rescues = mobility::HospitalDeliveryDetector::
      FloodRescuesOnly(analysis_->deliveries());
  EXPECT_GT(static_cast<int>(flood_rescues.size()), delivered_truth / 2);
}

TEST_F(AnalysisTest, RescuesConcentrateInFloodedRegions) {
  // Paper Fig. 4: the rescue distribution is not uniform over regions.
  const auto per_region = analysis_->RescuesPerRegion();
  int total = 0, max_region = 0;
  for (roadnet::RegionId r = 1; r <= roadnet::kNumRegions; ++r) {
    total += per_region[r];
    max_region = std::max(max_region, per_region[r]);
  }
  ASSERT_GT(total, 0);
  // The hottest region holds well above the uniform share (1/7).
  EXPECT_GT(max_region, total / 5);
}

TEST_F(AnalysisTest, FlowDifferenceSamplesPerSegment) {
  const auto& spec = world_->eval.spec;
  const auto samples =
      analysis_->FlowDifferenceSamples(spec.before_day, spec.after_day);
  EXPECT_EQ(samples.size(), world_->city->network.num_segments());
  for (double s : samples) EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace mobirescue::analysis
