#include "core/pipeline.hpp"

#include <gtest/gtest.h>

namespace mobirescue::core {
namespace {

/// Full Section IV/V pipeline on a scaled-down world: train the SVM, train
/// the DQN, evaluate all three methods. One shared setup — this is the most
/// expensive suite in the repository.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig config;
    config.city.grid_width = 12;
    config.city.grid_height = 12;
    config.city.num_hospitals = 5;
    config.trace.population.num_people = 400;
    world_ = new World(BuildWorld(config));
    svm_ = TrainSvmPredictor(*world_).release();
    ts_ = BuildTimeSeriesPredictor(*world_).release();
    TrainingConfig training;
    training.episodes = 6;
    training.sim.num_teams = 20;
    agent_ = TrainAgent(*world_, *svm_, training);
  }
  static void TearDownTestSuite() {
    delete ts_;
    delete svm_;
    delete world_;
  }

  static EvaluationOutcome Run(Method method) {
    sim::SimConfig sim_config;
    sim_config.num_teams = 20;
    return RunMethod(*world_, method, svm_, ts_, agent_, sim_config);
  }

  static World* world_;
  static predict::SvmRequestPredictor* svm_;
  static predict::TimeSeriesPredictor* ts_;
  static std::shared_ptr<rl::DqnAgent> agent_;
};

World* PipelineTest::world_ = nullptr;
predict::SvmRequestPredictor* PipelineTest::svm_ = nullptr;
predict::TimeSeriesPredictor* PipelineTest::ts_ = nullptr;
std::shared_ptr<rl::DqnAgent> PipelineTest::agent_ = nullptr;

TEST_F(PipelineTest, SvmLearnsTheFloodSignal) {
  EXPECT_GT(svm_->validation().Accuracy(), 0.75);
}

TEST_F(PipelineTest, AgentTrainedAndBufferFilled) {
  ASSERT_NE(agent_, nullptr);
  EXPECT_GT(agent_->buffer().size(), 100u);
  EXPECT_GT(agent_->train_steps(), 100u);
}

TEST_F(PipelineTest, MobiRescueServesMeaningfully) {
  const EvaluationOutcome outcome = Run(Method::kMobiRescue);
  EXPECT_GT(outcome.total_requests, 0);
  // At least half the day's requests must be served end-to-end.
  EXPECT_GT(outcome.metrics.total_served(), outcome.total_requests / 2);
  // Low dispatch latency: decisions are sub-second (paper: < 0.5 s).
  EXPECT_GT(outcome.metrics.total_timely(), 0);
}

TEST_F(PipelineTest, AllMethodsRunToCompletion) {
  for (Method method : {Method::kRescue, Method::kSchedule,
                        Method::kGreedyNearest, Method::kRandom}) {
    const EvaluationOutcome outcome = Run(method);
    EXPECT_GE(outcome.metrics.total_served(), 0) << MethodName(method);
    EXPECT_EQ(outcome.name, MethodName(method));
  }
}

TEST_F(PipelineTest, MobiRescueBeatsRandomDispatch) {
  const EvaluationOutcome mr = Run(Method::kMobiRescue);
  const EvaluationOutcome random = Run(Method::kRandom);
  EXPECT_GT(mr.metrics.total_served(), random.metrics.total_served());
}

TEST_F(PipelineTest, DeterministicEvaluation) {
  const EvaluationOutcome a = Run(Method::kSchedule);
  const EvaluationOutcome b = Run(Method::kSchedule);
  EXPECT_EQ(a.metrics.total_served(), b.metrics.total_served());
  EXPECT_EQ(a.metrics.total_timely(), b.metrics.total_timely());
}

TEST_F(PipelineTest, ParallelRunMethodsMatchesSerial) {
  // The tentpole guarantee: fanning methods out over the episode runner
  // changes wall-clock only — every metric equals the serial RunMethod run.
  sim::SimConfig sim_config;
  sim_config.num_teams = 20;
  const std::vector<Method> methods = {Method::kMobiRescue, Method::kRescue,
                                       Method::kSchedule};
  const auto parallel =
      RunMethods(*world_, methods, svm_, ts_, agent_, sim_config, {}, 4);
  ASSERT_EQ(parallel.size(), methods.size());
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const EvaluationOutcome serial =
        RunMethod(*world_, methods[i], svm_, ts_, agent_, sim_config);
    EXPECT_EQ(parallel[i].method, methods[i]);
    EXPECT_EQ(parallel[i].name, serial.name);
    EXPECT_EQ(parallel[i].total_requests, serial.total_requests);
    EXPECT_EQ(parallel[i].metrics.total_served(), serial.metrics.total_served())
        << MethodName(methods[i]);
    EXPECT_EQ(parallel[i].metrics.total_timely(), serial.metrics.total_timely())
        << MethodName(methods[i]);
  }
}

TEST_F(PipelineTest, RunMethodSeedsIsSchedulingIndependent) {
  sim::SimConfig sim_config;
  sim_config.num_teams = 20;
  sim_config.seed = 99;
  const auto serial = RunMethodSeeds(*world_, Method::kSchedule, svm_, ts_,
                                     agent_, sim_config, 4, /*jobs=*/1);
  const auto parallel = RunMethodSeeds(*world_, Method::kSchedule, svm_, ts_,
                                       agent_, sim_config, 4, /*jobs=*/4);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].metrics.total_served(),
              parallel[i].metrics.total_served());
    EXPECT_EQ(serial[i].metrics.total_timely(),
              parallel[i].metrics.total_timely());
  }
}

TEST_F(PipelineTest, RunMethodValidatesInputs) {
  sim::SimConfig sim_config;
  sim_config.num_teams = 5;
  EXPECT_THROW(
      RunMethod(*world_, Method::kMobiRescue, nullptr, ts_, nullptr,
                sim_config),
      std::invalid_argument);
  EXPECT_THROW(
      RunMethod(*world_, Method::kRescue, svm_, nullptr, agent_, sim_config),
      std::invalid_argument);
}

}  // namespace
}  // namespace mobirescue::core
