#include "core/world.hpp"

#include <gtest/gtest.h>

namespace mobirescue::core {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(BuildWorld(WorldConfig::Small()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* WorldTest::world_ = nullptr;

TEST_F(WorldTest, CityBuilt) {
  EXPECT_GT(world_->city->network.num_landmarks(), 50u);
  EXPECT_FALSE(world_->city->hospitals.empty());
  EXPECT_NE(world_->city->depot, roadnet::kInvalidLandmark);
}

TEST_F(WorldTest, BothScenariosHaveTraces) {
  EXPECT_FALSE(world_->train.trace.records.empty());
  EXPECT_FALSE(world_->eval.trace.records.empty());
  EXPECT_FALSE(world_->train.trace.rescues.empty());
  EXPECT_FALSE(world_->eval.trace.rescues.empty());
}

TEST_F(WorldTest, ScenariosDifferByStorm) {
  // Different seed salts produce different traces even for similar storms.
  EXPECT_NE(world_->train.trace.records.size(),
            world_->eval.trace.records.size());
}

TEST_F(WorldTest, EvalDayIsTheBusiestDay) {
  std::vector<int> per_day(world_->eval.spec.window_days, 0);
  for (const mobility::RescueEvent& ev : world_->eval.trace.rescues) {
    const int d = util::DayIndex(ev.request_time);
    if (d >= 0 && d < world_->eval.spec.window_days) ++per_day[d];
  }
  const int chosen = world_->eval.spec.eval_day;
  for (int d = 1; d < world_->eval.spec.window_days; ++d) {
    EXPECT_LE(per_day[d], per_day[chosen]) << "day " << d;
  }
}

TEST_F(WorldTest, FloodModelsBound) {
  // The flood objects are wired to their own scenario's weather field.
  const auto& spec = world_->eval.spec;
  const util::GeoPoint se = world_->city->box.At(0.9, 0.1);
  EXPECT_GE(world_->eval.flood->DepthAt(se, spec.storm.storm_end_s), 0.0);
  EXPECT_DOUBLE_EQ(world_->eval.flood->DepthAt(se, 0.0), 0.0);
}

}  // namespace
}  // namespace mobirescue::core
