// ExperienceCollector unit tests over synthetic captures: macro-transition
// open/accrue/close semantics mirroring the offline training path, the
// stand-down streak rule, and fallback-tick attribution aborts.
#include "learn/experience_collector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mobirescue::learn {
namespace {

constexpr std::size_t kDim = 3;

std::vector<double> Row(double tag) { return {tag, tag + 0.5, tag + 1.0}; }

/// One decidable team (index 0) with a depot row and two candidates.
dispatch::RoundCapture TwoCandidateCapture(sim::TeamAction action) {
  dispatch::RoundCapture c;
  c.valid = true;
  c.feature_rows = {Row(0.0), Row(1.0), Row(2.0)};  // depot, cand 0, cand 1
  c.rows = {0};
  c.team_begin = {0};
  c.cand_row = {{1, 2}};
  c.columns = {0, 1};
  c.candidates = {roadnet::SegmentId{7}, roadnet::SegmentId{9}};
  c.live_q = {0.1, 0.2, 0.3};
  c.live_actions = {action};
  c.prior_weight = 0.5;
  return c;
}

sim::DispatchContext OneTeamContext(int served, double drive_s) {
  sim::DispatchContext ctx;
  ctx.teams.resize(1);
  ctx.teams[0].served_since_dispatch = served;
  ctx.teams[0].drive_time_since_dispatch = drive_s;
  return ctx;
}

sim::TeamAction Goto(roadnet::SegmentId seg) {
  sim::TeamAction a;
  a.kind = sim::ActionKind::kGoto;
  a.target = seg;
  return a;
}

sim::TeamAction Keep() { return sim::TeamAction{}; }

class CollectorTest : public ::testing::Test {
 protected:
  dispatch::RewardWeights reward_{2.0, 0.001, 0.01};
  std::vector<rl::Transition> sunk_;
  ExperienceCollector collector_{reward_, [this](rl::Transition t) {
                                   sunk_.push_back(std::move(t));
                                 }};
};

TEST_F(CollectorTest, GotoOpensTransitionWithGammaCharge) {
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Goto(9)));
  EXPECT_TRUE(sunk_.empty());  // nothing to close on the first decision
  ASSERT_EQ(collector_.pending().size(), 1u);
  const ExperienceCollector::Pending& p = collector_.pending()[0];
  ASSERT_TRUE(p.valid);
  EXPECT_FALSE(p.is_standdown);
  EXPECT_EQ(p.features, Row(2.0));  // candidate 1's row
  EXPECT_DOUBLE_EQ(p.accumulated, -reward_.gamma);
  EXPECT_EQ(p.rounds, 0);
}

TEST_F(CollectorTest, RewardAccruesAndClosesOnNextDecision) {
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Goto(9)));
  // Two unscored rounds while driving: rewards accrue, transition stays
  // open.
  dispatch::RoundCapture invalid;
  collector_.Observe(OneTeamContext(1, 100.0), invalid);
  collector_.Observe(OneTeamContext(2, 50.0), invalid);
  EXPECT_TRUE(sunk_.empty());

  // Next scored round (the team decides again): the transition closes with
  // the accrued Eq. (5) reward and the current action set as bootstrap
  // candidates.
  collector_.Observe(OneTeamContext(0, 10.0), TwoCandidateCapture(Goto(7)));
  ASSERT_EQ(sunk_.size(), 1u);
  const rl::Transition& t = sunk_[0];
  EXPECT_EQ(t.features, Row(2.0));
  const double expect_reward = -reward_.gamma +
                               reward_.alpha * (1 + 2 + 0) -
                               reward_.beta * (100.0 + 50.0 + 10.0);
  EXPECT_DOUBLE_EQ(t.reward, expect_reward);
  EXPECT_EQ(t.duration_rounds, 3);
  EXPECT_FALSE(t.terminal);
  // Bootstrap candidates: depot row first, then both reachable candidates.
  ASSERT_EQ(t.next_candidates.size(), 3u);
  EXPECT_EQ(t.next_candidates[0], Row(0.0));
  EXPECT_EQ(t.next_candidates[1], Row(1.0));
  EXPECT_EQ(t.next_candidates[2], Row(2.0));
  EXPECT_EQ(collector_.transitions(), 1u);
}

TEST_F(CollectorTest, UnreachableCandidateRowsAreSkippedInBootstrap) {
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Goto(9)));
  dispatch::RoundCapture next = TwoCandidateCapture(Goto(7));
  next.cand_row = {{1, SIZE_MAX}};  // candidate 1 now unreachable
  collector_.Observe(OneTeamContext(0, 0.0), next);
  ASSERT_EQ(sunk_.size(), 1u);
  ASSERT_EQ(sunk_[0].next_candidates.size(), 2u);
  EXPECT_EQ(sunk_[0].next_candidates[0], Row(0.0));
  EXPECT_EQ(sunk_[0].next_candidates[1], Row(1.0));
}

TEST_F(CollectorTest, StandDownStreakContributesOneTransition) {
  // First stand-down opens a depot transition (no gamma charge)...
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Keep()));
  ASSERT_TRUE(collector_.pending()[0].valid);
  EXPECT_TRUE(collector_.pending()[0].is_standdown);
  EXPECT_DOUBLE_EQ(collector_.pending()[0].accumulated, 0.0);

  // ...the second stand-down closes it but opens nothing, and further
  // re-affirmations stay no-ops: one transition per streak.
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Keep()));
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Keep()));
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Keep()));
  EXPECT_EQ(sunk_.size(), 1u);
  EXPECT_FALSE(collector_.pending()[0].valid);
  EXPECT_EQ(sunk_[0].features, Row(0.0));  // the depot row

  // Serving again re-arms the streak rule.
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Goto(7)));
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Keep()));
  EXPECT_EQ(sunk_.size(), 2u);                  // the serving leg closed
  EXPECT_TRUE(collector_.pending()[0].valid);   // new stand-down opened
  EXPECT_TRUE(collector_.pending()[0].is_standdown);
}

TEST_F(CollectorTest, FallbackTickAbortsOpenTransitions) {
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Goto(9)));
  ASSERT_TRUE(collector_.pending()[0].valid);
  collector_.OnFallbackTick(OneTeamContext(1, 30.0));
  EXPECT_FALSE(collector_.pending()[0].valid);
  EXPECT_EQ(collector_.aborted(), 1u);
  EXPECT_TRUE(sunk_.empty());

  // The next policy decision starts fresh — the fallback's actions never
  // leak into the policy's attribution.
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Goto(7)));
  EXPECT_TRUE(sunk_.empty());
  EXPECT_TRUE(collector_.pending()[0].valid);
}

TEST_F(CollectorTest, RestorePendingRoundTripsOpenState) {
  collector_.Observe(OneTeamContext(0, 0.0), TwoCandidateCapture(Goto(9)));
  collector_.Observe(OneTeamContext(2, 40.0), dispatch::RoundCapture{});
  const auto saved = collector_.pending();

  std::vector<rl::Transition> other_sunk;
  ExperienceCollector restored(
      reward_, [&other_sunk](rl::Transition t) { other_sunk.push_back(t); });
  restored.RestorePending(saved, collector_.transitions(),
                          collector_.aborted());

  // Both collectors now close the same transition identically.
  restored.Observe(OneTeamContext(0, 5.0), TwoCandidateCapture(Goto(7)));
  collector_.Observe(OneTeamContext(0, 5.0), TwoCandidateCapture(Goto(7)));
  ASSERT_EQ(sunk_.size(), 1u);
  ASSERT_EQ(other_sunk.size(), 1u);
  EXPECT_EQ(sunk_[0].reward, other_sunk[0].reward);
  EXPECT_EQ(sunk_[0].duration_rounds, other_sunk[0].duration_rounds);
  EXPECT_EQ(sunk_[0].features, other_sunk[0].features);
}

}  // namespace
}  // namespace mobirescue::learn
