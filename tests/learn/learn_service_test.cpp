// The online continual-learning subsystem wired into the dispatch service
// (DESIGN.md §15), end to end on a real streamed day:
//   - a learning-enabled service with training frozen (steps_per_tick = 0)
//     serves the day bit-identically to the plain frozen-policy service —
//     collection and shadowing are pure observers,
//   - the whole loop (collect -> train -> shadow -> gate) is deterministic:
//     two identical runs make identical promotion decisions and end with
//     bitwise-equal live and candidate weights,
//   - a NaN-poisoned candidate is rejected by the gate every time and its
//     decisions never reach the simulator,
//   - the mobirescue-learn-v1 checkpoint blob round-trips the learner's
//     complete dynamic state,
//   - a process kill mid-episode (checkpoint cadence 1) recovers to the
//     exact same post-promotion weights and day outcome as the unkilled
//     run — the learner's interplay with the fault layer loses nothing.
#include "learn/learner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/world.hpp"
#include "serve/checkpoint.hpp"
#include "serve/dispatch_service.hpp"
#include "serve/fault_injector.hpp"
#include "serve/trace_streamer.hpp"
#include "sim/request.hpp"

namespace mobirescue::learn {
namespace {

// Every assertion in this suite is run-vs-run (bit-identity, determinism,
// gate behaviour) — none depends on how good the offline policy is. Under
// ThreadSanitizer's ~15x slowdown the suite keeps its full 288-tick days
// but trains the shared setup agent with fewer episodes.
#if defined(__SANITIZE_THREAD__)
constexpr int kSetupTrainingEpisodes = 2;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kSetupTrainingEpisodes = 2;
#else
constexpr int kSetupTrainingEpisodes = 6;
#endif
#else
constexpr int kSetupTrainingEpisodes = 6;
#endif

struct DayOutcome {
  std::vector<sim::Request> requests;
  int served = 0;
  int timely = 0;
};

class LearnServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new core::World(core::BuildWorld(core::WorldConfig::Small()));
    svm_ = core::TrainSvmPredictor(*world_).release();
    core::TrainingConfig training;
    training.episodes = kSetupTrainingEpisodes;
    training.sim.num_teams = 20;
    agent_ = core::TrainAgent(*world_, *svm_, training);
  }
  static void TearDownTestSuite() {
    delete svm_;
    delete world_;
    agent_.reset();
  }

  /// Promotions mutate the live agent in place, so every run gets its own
  /// copy of the trained weights.
  static std::shared_ptr<rl::DqnAgent> CloneAgent() {
    auto clone = std::make_shared<rl::DqnAgent>(agent_->config());
    clone->LoadWeights(agent_->SaveWeights());
    clone->LoadTargetWeights(agent_->SaveTargetWeights());
    return clone;
  }

  static sim::SimConfig SimCfg() {
    sim::SimConfig config;
    config.num_teams = 20;
    return config;
  }

  static int EvalDay() { return world_->eval.spec.eval_day; }
  static double DayOffset() { return EvalDay() * util::kSecondsPerDay; }

  static sim::RescueSimulator MakeSimulator() {
    return sim::RescueSimulator(
        *world_->city, *world_->eval.flood,
        sim::RequestsFromEvents(world_->eval.trace.rescues, EvalDay()),
        DayOffset(), SimCfg());
  }

  static mobility::GpsTrace DayTrace() {
    return sim::DaySlice(world_->eval.trace.records, EvalDay());
  }

  static DayOutcome Outcome(const sim::RescueSimulator& simulator) {
    DayOutcome out;
    out.requests = simulator.requests();
    out.served = simulator.metrics().total_served();
    out.timely = simulator.metrics().total_timely();
    return out;
  }

  static serve::ServiceConfig BaseServiceConfig() {
    serve::ServiceConfig config;
    config.queue.shard_capacity = 1 << 15;
    return config;
  }

  /// An aggressive gate so promotions can actually happen within one
  /// 288-tick day: short warmup, frequent checks, a small improvement bar.
  static LearnConfig AggressiveLearnConfig() {
    LearnConfig cfg;
    cfg.enabled = true;
    cfg.trainer.steps_per_tick = 8;
    cfg.trainer.min_buffer = 32;
    cfg.promotion.check_every_n_ticks = 4;
    cfg.promotion.min_evidence = 16;
    cfg.promotion.min_td_improvement = 0.005;
    cfg.promotion.watch_window_ticks = 6;
    cfg.promotion.cooldown_ticks = 8;
    return cfg;
  }

  struct LearningRun {
    DayOutcome outcome;
    serve::ServiceMetrics metrics;
    std::vector<double> live_weights;
    std::vector<double> candidate_weights;
    std::vector<std::uint64_t> promotion_ticks;
    std::string learner_state;
  };

  static LearningRun RunLearningDay(const LearnConfig& learn_cfg) {
    serve::ServiceConfig config = BaseServiceConfig();
    config.learn = learn_cfg;
    auto live = CloneAgent();
    serve::DispatchService service(*world_->city, *world_->index, *svm_, live,
                                   DayOffset(), config);
    sim::RescueSimulator simulator = MakeSimulator();
    serve::TraceStreamer streamer(DayTrace(), service);
    service.ServeEpisode(simulator, &streamer);

    LearningRun run;
    run.outcome = Outcome(simulator);
    run.metrics = service.metrics();
    run.live_weights = live->SaveWeights();
    if (service.learner() != nullptr) {
      run.candidate_weights = service.learner()->candidate().SaveWeights();
      run.promotion_ticks = service.learner()->promotion().promotion_ticks();
      run.learner_state = service.learner()->SaveStateString();
    }
    return run;
  }

  static DayOutcome RunFrozenDay() {
    auto live = CloneAgent();
    serve::DispatchService service(*world_->city, *world_->index, *svm_, live,
                                   DayOffset(), BaseServiceConfig());
    sim::RescueSimulator simulator = MakeSimulator();
    serve::TraceStreamer streamer(DayTrace(), service);
    service.ServeEpisode(simulator, &streamer);
    return Outcome(simulator);
  }

  static void ExpectIdentical(const DayOutcome& a, const DayOutcome& b) {
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.timely, b.timely);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      const sim::Request& ra = a.requests[i];
      const sim::Request& rb = b.requests[i];
      EXPECT_EQ(ra.status, rb.status) << "request " << i;
      EXPECT_EQ(ra.served_by_team, rb.served_by_team) << "request " << i;
      EXPECT_EQ(ra.pickup_time, rb.pickup_time) << "request " << i;
      EXPECT_EQ(ra.delivery_time, rb.delivery_time) << "request " << i;
    }
  }

  static core::World* world_;
  static predict::SvmRequestPredictor* svm_;
  static std::shared_ptr<rl::DqnAgent> agent_;
};

core::World* LearnServiceTest::world_ = nullptr;
predict::SvmRequestPredictor* LearnServiceTest::svm_ = nullptr;
std::shared_ptr<rl::DqnAgent> LearnServiceTest::agent_ = nullptr;

TEST_F(LearnServiceTest, FrozenTrainerObservesWithoutChangingDecisions) {
  // Learning enabled but training frozen: the candidate never improves, the
  // gate never promotes, and the served day is bit-identical to the plain
  // frozen-policy service — collection and shadowing are pure observers.
  const DayOutcome frozen = RunFrozenDay();
  EXPECT_FALSE(frozen.requests.empty());

  LearnConfig cfg;
  cfg.enabled = true;
  cfg.trainer.steps_per_tick = 0;
  const LearningRun run = RunLearningDay(cfg);

  ExpectIdentical(frozen, run.outcome);
  EXPECT_TRUE(run.metrics.learning);
  EXPECT_EQ(run.metrics.learn.ticks_observed, 288u);
  EXPECT_GT(run.metrics.learn.transitions, 0u);
  EXPECT_GT(run.metrics.learn.shadow_rounds, 0u);
  EXPECT_EQ(run.metrics.learn.train_steps, 0u);
  EXPECT_EQ(run.metrics.learn.promotions, 0u);
  // The live agent came through the day untouched.
  EXPECT_EQ(run.live_weights, agent_->SaveWeights());
  // An untrained candidate shadows the live policy's exact scores: full
  // agreement on every round.
  EXPECT_DOUBLE_EQ(run.metrics.learn.shadow_agreement, 1.0);
}

TEST_F(LearnServiceTest, LearningLoopIsDeterministic) {
  // The acceptance bar: (seed, tick stream) fully determine the loop. Two
  // identical runs make identical promotion decisions and end with
  // bitwise-equal weights on both networks.
  const LearningRun a = RunLearningDay(AggressiveLearnConfig());
  const LearningRun b = RunLearningDay(AggressiveLearnConfig());

  ExpectIdentical(a.outcome, b.outcome);
  EXPECT_EQ(a.promotion_ticks, b.promotion_ticks);
  EXPECT_EQ(a.metrics.learn.promotions, b.metrics.learn.promotions);
  EXPECT_EQ(a.metrics.learn.rejections, b.metrics.learn.rejections);
  EXPECT_EQ(a.metrics.learn.train_steps, b.metrics.learn.train_steps);
  EXPECT_EQ(a.metrics.learn.transitions, b.metrics.learn.transitions);
  EXPECT_EQ(a.live_weights, b.live_weights);
  EXPECT_EQ(a.candidate_weights, b.candidate_weights);
  EXPECT_EQ(a.learner_state, b.learner_state);

  // The gate actually ran: the day produced enough evidence to evaluate.
  EXPECT_GT(a.metrics.learn.train_steps, 0u);
  EXPECT_GT(a.metrics.learn.promotions + a.metrics.learn.rejections, 0u);
  EXPECT_TRUE(std::isfinite(a.metrics.learn.last_live_td));
}

TEST_F(LearnServiceTest, NaNPoisonedCandidateIsNeverPromoted) {
  const DayOutcome frozen = RunFrozenDay();

  serve::ServiceConfig config = BaseServiceConfig();
  config.learn = AggressiveLearnConfig();
  auto live = CloneAgent();
  const std::vector<double> original = live->SaveWeights();
  serve::DispatchService service(*world_->city, *world_->index, *svm_, live,
                                 DayOffset(), config);
  ASSERT_NE(service.learner(), nullptr);

  // Poison the candidate before the day starts: every Q it produces and
  // every gradient step it takes stays NaN.
  std::vector<double> poison =
      service.learner()->candidate().SaveWeights();
  for (double& w : poison) w = std::nan("");
  service.learner()->candidate().LoadWeights(poison);

  sim::RescueSimulator simulator = MakeSimulator();
  serve::TraceStreamer streamer(DayTrace(), service);
  service.ServeEpisode(simulator, &streamer);

  const serve::ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.learn.promotions, 0u);
  EXPECT_GT(metrics.learn.rejections, 0u);
  // The shadow runner flagged the non-finite Q output...
  EXPECT_TRUE(service.learner()->shadow().SawNonFiniteQ(0));
  // ...and the poisoned policy's decisions never reached the simulator:
  // the live agent is untouched and the day is the frozen-policy day.
  EXPECT_EQ(live->SaveWeights(), original);
  ExpectIdentical(frozen, Outcome(simulator));
}

TEST_F(LearnServiceTest, LearnerStateRoundTripsThroughCheckpoint) {
  serve::ServiceConfig config = BaseServiceConfig();
  config.learn = AggressiveLearnConfig();
  auto live = CloneAgent();
  serve::DispatchService service(*world_->city, *world_->index, *svm_, live,
                                 DayOffset(), config);
  sim::RescueSimulator simulator = MakeSimulator();
  serve::TraceStreamer streamer(DayTrace(), service);
  service.ServeEpisode(simulator, &streamer);
  ASSERT_NE(service.learner(), nullptr);
  const std::string before = service.learner()->SaveStateString();

  // Full artifact round trip through the text format.
  const std::string path =
      std::string(::testing::TempDir()) + "learn_service_ckpt.txt";
  serve::SaveCheckpointToFile(service.Checkpoint(), path);
  const serve::ServiceCheckpoint loaded = serve::LoadCheckpointFromFile(path);
  EXPECT_FALSE(loaded.learner_state.empty());

  // A fresh service built from the restored models plus the serving-state
  // restore carries the learner's complete dynamic state.
  auto restored_agent = serve::RestoreAgent(loaded);
  auto restored_svm = serve::RestorePredictor(loaded, *world_->train.factors);
  serve::DispatchService restored(*world_->city, *world_->index,
                                  *restored_svm, restored_agent, DayOffset(),
                                  config);
  ASSERT_NE(restored.learner(), nullptr);
  restored.RestoreServingState(loaded);

  EXPECT_EQ(restored.learner()->SaveStateString(), before);
  EXPECT_EQ(restored.learner()->candidate().SaveWeights(),
            service.learner()->candidate().SaveWeights());
  EXPECT_EQ(restored.learner()->promotion().promotion_ticks(),
            service.learner()->promotion().promotion_ticks());
  EXPECT_EQ(restored_agent->SaveWeights(), live->SaveWeights());
}

TEST_F(LearnServiceTest, KillWithoutLearningIsBitIdentical) {
  // Control for the learning kill test below: at checkpoint cadence 1 with
  // per-round prediction refresh, kill-and-restore of the PLAIN frozen
  // service must already be lossless. Any divergence here is a serving-
  // state restore gap, not a learner bug.
  dispatch::MobiRescueConfig mr;
  mr.prediction_refresh_s = 0.0;
  serve::ServiceConfig config = BaseServiceConfig();

  DayOutcome baseline;
  {
    auto live = CloneAgent();
    serve::DispatchService service(*world_->city, *world_->index, *svm_, live,
                                   DayOffset(), config, mr);
    sim::RescueSimulator simulator = MakeSimulator();
    serve::TraceStreamer streamer(DayTrace(), service);
    service.ServeEpisode(simulator, &streamer);
    baseline = Outcome(simulator);
  }

  const std::string ckpt_path =
      std::string(::testing::TempDir()) + "frozen_kill_ckpt.txt";
  serve::FaultPlan plan;
  plan.kill_at_ticks = {97};
  serve::FaultInjector injector{plan};
  auto restored_svms = std::make_shared<
      std::vector<std::unique_ptr<predict::SvmRequestPredictor>>>();
  auto restored_agents =
      std::make_shared<std::vector<std::shared_ptr<rl::DqnAgent>>>();
  sim::RescueSimulator simulator = MakeSimulator();
  serve::FaultedEpisodeConfig episode;
  episode.checkpoint_every_n_ticks = 1;
  episode.checkpoint_path = ckpt_path;
  serve::FaultedEpisodeOutcome outcome = serve::RunFaultedEpisode(
      simulator, DayTrace(), injector,
      [&](const serve::ServiceCheckpoint* ckpt)
          -> std::unique_ptr<serve::DispatchService> {
        if (ckpt == nullptr) {
          return std::make_unique<serve::DispatchService>(
              *world_->city, *world_->index, *svm_, CloneAgent(), DayOffset(),
              config, mr);
        }
        restored_agents->push_back(serve::RestoreAgent(*ckpt));
        restored_svms->push_back(
            serve::RestorePredictor(*ckpt, *world_->train.factors));
        return std::make_unique<serve::DispatchService>(
            *world_->city, *world_->index, *restored_svms->back(),
            restored_agents->back(), DayOffset(), config, mr);
      },
      episode);
  EXPECT_EQ(outcome.ticks, 288u);
  EXPECT_EQ(outcome.kills, 1u);
  ExpectIdentical(baseline, Outcome(simulator));
}

TEST_F(LearnServiceTest, KillMidLearningRecoversBitIdentically) {
  // Kill-and-restore loses nothing at checkpoint cadence 1: the recovered
  // run's training, shadowing, promotions, and served day are all
  // bit-identical to the unkilled run. prediction_refresh_s = 0 keeps the
  // one non-checkpointed cache (the SVM's {ñ_e}) rebuilt every round.
  dispatch::MobiRescueConfig mr;
  mr.prediction_refresh_s = 0.0;

  serve::ServiceConfig config = BaseServiceConfig();
  config.learn = AggressiveLearnConfig();

  // Baseline: the unkilled learning day under the same refresh cadence.
  LearningRun baseline;
  {
    auto live = CloneAgent();
    serve::DispatchService service(*world_->city, *world_->index, *svm_, live,
                                   DayOffset(), config, mr);
    sim::RescueSimulator simulator = MakeSimulator();
    serve::TraceStreamer streamer(DayTrace(), service);
    service.ServeEpisode(simulator, &streamer);
    baseline.outcome = Outcome(simulator);
    baseline.metrics = service.metrics();
    baseline.live_weights = live->SaveWeights();
    baseline.promotion_ticks = service.learner()->promotion().promotion_ticks();
    baseline.learner_state = service.learner()->SaveStateString();
  }

  const std::string ckpt_path =
      std::string(::testing::TempDir()) + "learn_kill_ckpt.txt";
  serve::FaultPlan plan;  // kill-only: record faults would change the day
  plan.kill_at_ticks = {97, 193};
  serve::FaultInjector injector{plan};

  auto restored_svms = std::make_shared<
      std::vector<std::unique_ptr<predict::SvmRequestPredictor>>>();
  auto restored_agents =
      std::make_shared<std::vector<std::shared_ptr<rl::DqnAgent>>>();

  sim::RescueSimulator simulator = MakeSimulator();
  serve::FaultedEpisodeConfig episode;
  episode.checkpoint_every_n_ticks = 1;
  episode.checkpoint_path = ckpt_path;
  serve::FaultedEpisodeOutcome outcome = serve::RunFaultedEpisode(
      simulator, DayTrace(), injector,
      [&](const serve::ServiceCheckpoint* ckpt)
          -> std::unique_ptr<serve::DispatchService> {
        if (ckpt == nullptr) {
          return std::make_unique<serve::DispatchService>(
              *world_->city, *world_->index, *svm_, CloneAgent(), DayOffset(),
              config, mr);
        }
        restored_agents->push_back(serve::RestoreAgent(*ckpt));
        restored_svms->push_back(
            serve::RestorePredictor(*ckpt, *world_->train.factors));
        return std::make_unique<serve::DispatchService>(
            *world_->city, *world_->index, *restored_svms->back(),
            restored_agents->back(), DayOffset(), config, mr);
      },
      episode);

  EXPECT_EQ(outcome.ticks, 288u);
  EXPECT_EQ(outcome.kills, 2u);
  ASSERT_NE(outcome.service->learner(), nullptr);

  // The recovered day IS the unkilled day, down to the learner's last bit.
  ExpectIdentical(baseline.outcome, Outcome(simulator));
  EXPECT_EQ(outcome.service->learner()->promotion().promotion_ticks(),
            baseline.promotion_ticks);
  EXPECT_EQ(outcome.service->learner()->SaveStateString(),
            baseline.learner_state);
  EXPECT_FALSE(restored_agents->empty());
  EXPECT_EQ(restored_agents->back()->SaveWeights(), baseline.live_weights);
  EXPECT_GE(outcome.service->metrics().recoveries, 1u);
}

}  // namespace
}  // namespace mobirescue::learn
