// PromotionController state machine and gate semantics over small synthetic
// agents, BudgetedTrainer budgets, ShadowPolicyRunner scoring, and the
// ReplayBuffer's concurrent-append path feeding deterministic sampling.
#include "learn/promotion_controller.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "learn/budgeted_trainer.hpp"
#include "learn/shadow_runner.hpp"
#include "rl/dqn_agent.hpp"
#include "rl/replay_buffer.hpp"

namespace mobirescue::learn {
namespace {

rl::DqnConfig TinyConfig(std::uint64_t seed) {
  rl::DqnConfig c;
  c.feature_dim = 4;
  c.hidden = {8};
  c.batch_size = 8;
  c.buffer_capacity = 256;
  c.seed = seed;
  return c;
}

rl::Transition MakeTransition(double tag) {
  rl::Transition t;
  t.features = {tag, 0.5, -tag, 1.0};
  t.reward = tag;
  t.next_candidates = {{0.0, tag, 1.0, -1.0}, {tag, tag, 0.0, 0.5}};
  t.duration_rounds = 1;
  return t;
}

PromotionConfig FastGate() {
  PromotionConfig p;
  p.check_every_n_ticks = 1;
  p.evidence_window = 16;
  p.min_evidence = 4;
  p.min_td_improvement = 0.02;
  p.watch_window_ticks = 3;
  p.cooldown_ticks = 2;
  return p;
}

void Feed(PromotionController& pc, int n) {
  for (int i = 0; i < n; ++i) {
    pc.AddEvidence(MakeTransition(0.1 * static_cast<double>(i + 1)));
  }
}

TEST(PromotionControllerTest, IdenticalCandidateNeverPromotes) {
  rl::DqnAgent live(TinyConfig(11));
  rl::DqnAgent candidate(TinyConfig(12));
  candidate.LoadWeights(live.SaveWeights());
  candidate.LoadTargetWeights(live.SaveTargetWeights());
  PromotionController pc(FastGate(), live, candidate);

  EXPECT_EQ(pc.state(), PromotionState::kWarmup);
  Feed(pc, 8);
  EXPECT_EQ(pc.state(), PromotionState::kEvaluating);

  const std::vector<double> before = live.SaveWeights();
  for (std::uint64_t tick = 1; tick <= 30; ++tick) {
    pc.OnTick(tick, /*used_fallback=*/false, /*nonfinite=*/false);
  }
  // Equal weights -> equal TD error -> the strict-improvement gate never
  // fires; every evaluation is a rejection.
  EXPECT_EQ(pc.promotions(), 0u);
  EXPECT_GT(pc.rejections(), 0u);
  EXPECT_EQ(live.SaveWeights(), before);
  EXPECT_TRUE(std::isfinite(pc.last_live_td()));
  EXPECT_DOUBLE_EQ(pc.last_live_td(), pc.last_candidate_td());
}

TEST(PromotionControllerTest, BetterCandidatePromotesThenRollsBackOnFault) {
  rl::DqnAgent live(TinyConfig(11));
  rl::DqnAgent candidate(TinyConfig(12));
  PromotionController pc(FastGate(), live, candidate);
  Feed(pc, 8);

  // Train the candidate on the same evidence until its TD error on the
  // window beats the live network's by the gate margin.
  for (int i = 0; i < 64; ++i) candidate.Push(MakeTransition(0.1 * (i % 8)));
  std::deque<rl::Transition> window;
  for (int i = 0; i < 8; ++i) window.push_back(MakeTransition(0.1 * (i + 1)));
  for (int step = 0; step < 400; ++step) {
    candidate.TrainStep();
    if (PromotionController::MeanTdError(candidate, window) <
        0.9 * PromotionController::MeanTdError(live, window)) {
      break;
    }
  }
  ASSERT_LT(PromotionController::MeanTdError(candidate, window),
            0.98 * PromotionController::MeanTdError(live, window))
      << "training failed to beat the frozen live net on synthetic data";

  const std::vector<double> pre_promotion = live.SaveWeights();
  pc.OnTick(1, false, false);
  ASSERT_EQ(pc.promotions(), 1u);
  EXPECT_EQ(pc.state(), PromotionState::kWatching);
  EXPECT_EQ(live.SaveWeights(), candidate.SaveWeights());
  EXPECT_EQ(pc.promotion_ticks(), std::vector<std::uint64_t>{1});

  // A fallback tick inside the watch window reverts the promotion.
  pc.OnTick(2, /*used_fallback=*/true, false);
  EXPECT_EQ(pc.rollbacks(), 1u);
  EXPECT_EQ(pc.state(), PromotionState::kCooldown);
  EXPECT_EQ(live.SaveWeights(), pre_promotion);
}

TEST(PromotionControllerTest, DefaultGateRulesMatchTheImplicitGate) {
  // DESIGN.md §16: the 4-arg ctor given DefaultGateRules(config) must walk
  // the state machine exactly like the 3-arg ctor — same rejections, same
  // promotion tick, same watch-window rollback. Two identically seeded
  // agent pairs, one controller each, driven by the same script.
  const PromotionConfig config = FastGate();
  rl::DqnAgent live_a(TinyConfig(11));
  rl::DqnAgent cand_a(TinyConfig(12));
  rl::DqnAgent live_b(TinyConfig(11));
  rl::DqnAgent cand_b(TinyConfig(12));
  PromotionController implicit_gate(config, live_a, cand_a);
  PromotionController explicit_gate(
      config, live_b, cand_b, PromotionController::DefaultGateRules(config));
  Feed(implicit_gate, 8);
  Feed(explicit_gate, 8);

  auto step = [&](std::uint64_t tick, bool fallback, bool nonfinite) {
    implicit_gate.OnTick(tick, fallback, nonfinite);
    explicit_gate.OnTick(tick, fallback, nonfinite);
    ASSERT_EQ(implicit_gate.state(), explicit_gate.state()) << "tick " << tick;
    ASSERT_EQ(implicit_gate.promotions(), explicit_gate.promotions());
    ASSERT_EQ(implicit_gate.rejections(), explicit_gate.rejections());
    ASSERT_EQ(implicit_gate.rollbacks(), explicit_gate.rollbacks());
  };

  // Phase 1: a nonfinite shadow verdict, then equal-weights evaluations —
  // every gate pass is a rejection plus its cooldown, in lockstep.
  step(1, false, true);
  for (std::uint64_t tick = 2; tick <= 8; ++tick) step(tick, false, false);
  EXPECT_GT(implicit_gate.rejections(), 0u);
  EXPECT_EQ(implicit_gate.promotions(), 0u);

  // Phase 2: train one candidate past the gate margin and mirror its
  // weights into the other pair, so both gates see the same evidence.
  for (int i = 0; i < 64; ++i) cand_a.Push(MakeTransition(0.1 * (i % 8)));
  std::deque<rl::Transition> window;
  for (int i = 0; i < 8; ++i) window.push_back(MakeTransition(0.1 * (i + 1)));
  for (int step_i = 0; step_i < 400; ++step_i) {
    cand_a.TrainStep();
    if (PromotionController::MeanTdError(cand_a, window) <
        0.9 * PromotionController::MeanTdError(live_a, window)) {
      break;
    }
  }
  ASSERT_LT(PromotionController::MeanTdError(cand_a, window),
            0.98 * PromotionController::MeanTdError(live_a, window))
      << "training failed to beat the frozen live net on synthetic data";
  cand_b.LoadWeights(cand_a.SaveWeights());
  cand_b.LoadTargetWeights(cand_a.SaveTargetWeights());

  // Phase 3: ride out any remaining cooldown, promote, then roll back on a
  // watch-window fallback tick — still in lockstep.
  std::uint64_t tick = 9;
  while (implicit_gate.promotions() == 0 && tick < 20) {
    step(tick++, false, false);
  }
  ASSERT_EQ(implicit_gate.promotions(), 1u);
  ASSERT_EQ(implicit_gate.state(), PromotionState::kWatching);
  EXPECT_EQ(live_a.SaveWeights(), live_b.SaveWeights());
  step(tick, /*fallback=*/true, false);
  EXPECT_EQ(implicit_gate.rollbacks(), 1u);
  EXPECT_EQ(implicit_gate.state(), PromotionState::kCooldown);
  EXPECT_EQ(live_a.SaveWeights(), live_b.SaveWeights());

  // The two gates evaluated the same number of times and agree on the TD
  // readings of the last evaluation, bit for bit.
  EXPECT_EQ(implicit_gate.gate().evaluations(),
            explicit_gate.gate().evaluations());
  EXPECT_EQ(implicit_gate.gate().trips(), explicit_gate.gate().trips());
  EXPECT_DOUBLE_EQ(implicit_gate.last_live_td(),
                   explicit_gate.last_live_td());
  EXPECT_DOUBLE_EQ(implicit_gate.last_candidate_td(),
                   explicit_gate.last_candidate_td());
}

TEST(PromotionControllerTest, NonFiniteCandidateIsRejected) {
  rl::DqnAgent live(TinyConfig(11));
  rl::DqnAgent candidate(TinyConfig(12));
  PromotionController pc(FastGate(), live, candidate);
  Feed(pc, 8);

  // Poison the candidate outright: NaN weights produce non-finite TD and
  // fail the weight health check.
  std::vector<double> poison = candidate.SaveWeights();
  for (double& w : poison) w = std::nan("");
  candidate.LoadWeights(poison);

  const std::vector<double> before = live.SaveWeights();
  for (std::uint64_t tick = 1; tick <= 10; ++tick) pc.OnTick(tick, false, false);
  EXPECT_EQ(pc.promotions(), 0u);
  EXPECT_GT(pc.rejections(), 0u);
  EXPECT_EQ(live.SaveWeights(), before);

  // The shadow runner's non-finite verdict alone must also block, even
  // with healthy weights.
  rl::DqnAgent candidate2(TinyConfig(13));
  PromotionController pc2(FastGate(), live, candidate2);
  Feed(pc2, 8);
  for (std::uint64_t tick = 1; tick <= 10; ++tick) {
    pc2.OnTick(tick, false, /*nonfinite=*/true);
  }
  EXPECT_EQ(pc2.promotions(), 0u);
  EXPECT_EQ(live.SaveWeights(), before);
}

TEST(PromotionControllerTest, SnapshotRoundTripsMidWatchState) {
  rl::DqnAgent live(TinyConfig(11));
  rl::DqnAgent candidate(TinyConfig(12));
  PromotionController pc(FastGate(), live, candidate);
  Feed(pc, 8);
  pc.OnTick(1, false, false);  // evaluates; promotion or rejection

  const PromotionController::Snapshot snap = pc.snapshot();
  rl::DqnAgent live2(TinyConfig(11));
  rl::DqnAgent candidate2(TinyConfig(12));
  PromotionController restored(FastGate(), live2, candidate2);
  restored.Restore(snap);
  EXPECT_EQ(restored.state(), pc.state());
  EXPECT_EQ(restored.promotions(), pc.promotions());
  EXPECT_EQ(restored.rejections(), pc.rejections());
  EXPECT_EQ(restored.evidence_size(), pc.evidence_size());
  EXPECT_EQ(restored.promotion_ticks(), pc.promotion_ticks());
}

TEST(BudgetedTrainerTest, StepBudgetIsDeterministicAndGated) {
  rl::DqnAgent candidate(TinyConfig(21));
  TrainerConfig cfg;
  cfg.steps_per_tick = 3;
  cfg.train_every_n_ticks = 2;
  cfg.min_buffer = 16;
  BudgetedTrainer trainer(cfg, candidate);

  // Below min_buffer: no steps.
  EXPECT_EQ(trainer.OnTick(2), 0);
  for (int i = 0; i < 32; ++i) candidate.Push(MakeTransition(0.1 * i));
  // Off-cadence tick: no steps.
  EXPECT_EQ(trainer.OnTick(3), 0);
  // On-cadence: exactly the step budget.
  EXPECT_EQ(trainer.OnTick(4), 3);
  EXPECT_EQ(trainer.steps_run(), 3u);
  EXPECT_EQ(candidate.train_steps(), 3u);
  EXPECT_EQ(trainer.budget_overruns(), 0u);

  // steps_per_tick = 0 disables training entirely.
  TrainerConfig off;
  off.steps_per_tick = 0;
  BudgetedTrainer disabled(off, candidate);
  EXPECT_EQ(disabled.OnTick(4), 0);
}

TEST(ShadowRunnerTest, AgreesWithItselfAndFlagsNonFiniteQ) {
  // HeuristicPrior reads fixed feature positions, so shadow captures need
  // full 11-dim dispatcher rows even at prior_weight 0.
  rl::DqnConfig wide = TinyConfig(31);
  wide.feature_dim = 11;
  auto agent = std::make_shared<rl::DqnAgent>(wide);
  ShadowConfig cfg;
  ShadowPolicyRunner runner(cfg);
  const std::size_t idx = runner.AddPolicy("self", agent);

  // A capture whose live actions were produced by this same agent: shadow
  // scoring must reproduce them (agreement 1.0). Build it by scoring rows
  // the same way the dispatcher does, with prior_weight 0 so the margin is
  // pure Q.
  const auto row11 = [](double a, double b) {
    std::vector<double> r(11, 0.0);
    r[0] = a;
    r[1] = b;
    r[4] = a > 0.5 ? 1.0 : 0.0;
    return r;
  };
  dispatch::RoundCapture cap;
  cap.valid = true;
  cap.feature_rows = {row11(1.0, 0.0), row11(0.0, 1.0), row11(0.2, 0.7)};
  cap.rows = {0};
  cap.team_begin = {0};
  cap.cand_row = {{1, 2}};
  cap.columns = {0, 1};
  cap.candidates = {roadnet::SegmentId{3}, roadnet::SegmentId{4}};
  cap.live_q = agent->QValues(cap.feature_rows);
  cap.prior_weight = 0.0;
  const double depot = cap.live_q[0];
  sim::TeamAction live;
  if (cap.live_q[1] > depot || cap.live_q[2] > depot) {
    live.kind = sim::ActionKind::kGoto;
    live.target = cap.live_q[1] >= cap.live_q[2] ? cap.candidates[0]
                                                 : cap.candidates[1];
  }
  cap.live_actions = {live};

  runner.OnTick(1, cap);
  ASSERT_EQ(runner.log().size(), 1u);
  EXPECT_DOUBLE_EQ(runner.log().back().agreement, 1.0);
  EXPECT_TRUE(runner.log().back().q_finite);
  EXPECT_FALSE(runner.SawNonFiniteQ(idx));
  EXPECT_DOUBLE_EQ(runner.MeanAgreement(idx), 1.0);

  // Poison the policy: the round is flagged, not crashed.
  std::vector<double> poison = agent->SaveWeights();
  for (double& w : poison) w = std::nan("");
  agent->LoadWeights(poison);
  runner.OnTick(2, cap);
  EXPECT_FALSE(runner.log().back().q_finite);
  EXPECT_TRUE(runner.SawNonFiniteQ(idx));
}

TEST(ReplayBufferConcurrencyTest, ConcurrentAppendsThenDeterministicSampling) {
  constexpr std::size_t kCapacity = 128;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  rl::ReplayBuffer buffer(kCapacity);

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&buffer, w] {
      for (int i = 0; i < kPerThread; ++i) {
        buffer.PushConcurrent(MakeTransition(w + 0.001 * i));
      }
    });
  }
  for (std::thread& t : workers) t.join();

  // Exact counters regardless of interleaving: every append counted, and
  // every append past capacity evicted exactly one slot.
  EXPECT_EQ(buffer.size(), kCapacity);
  EXPECT_EQ(buffer.pushes(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(buffer.evictions(),
            static_cast<std::uint64_t>(kThreads * kPerThread - kCapacity));

  // Sampling after the concurrent era is a pure function of (content,
  // rng): same seed, same minibatch.
  util::Rng rng_a(77), rng_b(77);
  const auto sample_a = buffer.Sample(32, rng_a);
  const auto sample_b = buffer.Sample(32, rng_b);
  ASSERT_EQ(sample_a.size(), sample_b.size());
  for (std::size_t i = 0; i < sample_a.size(); ++i) {
    EXPECT_EQ(sample_a[i], sample_b[i]) << "sample index " << i;
  }

  // And a Restore()d buffer samples identically to the original.
  rl::ReplayBuffer copy(kCapacity);
  copy.Restore(buffer.data(), buffer.cursor(), buffer.pushes(),
               buffer.evictions());
  util::Rng rng_c(77);
  const auto sample_c = copy.Sample(32, rng_c);
  ASSERT_EQ(sample_c.size(), sample_a.size());
  for (std::size_t i = 0; i < sample_a.size(); ++i) {
    EXPECT_EQ(sample_a[i]->reward, sample_c[i]->reward);
    EXPECT_EQ(sample_a[i]->features, sample_c[i]->features);
  }
}

}  // namespace
}  // namespace mobirescue::learn
