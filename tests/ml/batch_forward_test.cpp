// Parity tests for the batch-first ML compute layer: PredictBatch must be
// bit-identical to the per-row training Forward, must never touch the
// training activation cache, and must be safe for concurrent readers. The
// blocked GEMM kernels are checked bit-for-bit against naive triple-loop
// references across shapes, including degenerate 1x1 and non-square ones.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ml/nn/matrix.hpp"
#include "ml/nn/mlp.hpp"
#include "util/rng.hpp"

namespace mobirescue::ml {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.Uniform(-2.0, 2.0);
  return m;
}

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t k = 0; k < a.cols(); ++k) {
        out(i, j) += a(i, k) * b(k, j);
      }
    }
  }
  return out;
}

Matrix NaiveTransposedMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t k = 0; k < a.rows(); ++k) {
        out(i, j) += a(k, i) * b(k, j);
      }
    }
  }
  return out;
}

Matrix NaiveMatMulTransposed(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a(i, k) * b(j, k);
      }
      out(i, j) = acc;
    }
  }
  return out;
}

// Shapes stress the kernels' edges: 1x1, single row/column, non-square,
// and sizes crossing the blocking thresholds (kBlockK = 64, kBlockJ = 256).
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {{1, 1, 1},   {1, 7, 3},    {5, 1, 9},
                         {3, 9, 1},   {4, 8, 16},   {7, 13, 5},
                         {32, 32, 32}, {6, 65, 10},  {3, 130, 300},
                         {70, 70, 70}};

TEST(MatrixKernelParityTest, MatMulMatchesNaiveBitwise) {
  util::Rng rng(11);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, rng);
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    const Matrix fast = a.MatMul(b);
    const Matrix ref = NaiveMatMul(a, b);
    ASSERT_EQ(fast.rows(), ref.rows());
    ASSERT_EQ(fast.cols(), ref.cols());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast.data()[i], ref.data()[i])
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at " << i;
    }
  }
}

TEST(MatrixKernelParityTest, TransposedMatMulMatchesNaiveBitwise) {
  util::Rng rng(12);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.k, s.m, rng);  // a^T is (m x k)
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    const Matrix fast = a.TransposedMatMul(b);
    const Matrix ref = NaiveTransposedMatMul(a, b);
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast.data()[i], ref.data()[i])
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at " << i;
    }
  }
}

TEST(MatrixKernelParityTest, MatMulTransposedMatchesNaiveBitwise) {
  util::Rng rng(13);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, rng);
    const Matrix b = RandomMatrix(s.n, s.k, rng);  // b^T is (k x n)
    const Matrix fast = a.MatMulTransposed(b);
    const Matrix ref = NaiveMatMulTransposed(a, b);
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast.data()[i], ref.data()[i])
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at " << i;
    }
  }
}

TEST(MatrixKernelParityTest, SingleRowProductMatchesBatchRowBitwise) {
  // The invariant the batched inference paths rely on: row r of an N-row
  // product is bit-identical to multiplying row r alone.
  util::Rng rng(14);
  const Matrix a = RandomMatrix(33, 65, rng);
  const Matrix b = RandomMatrix(65, 48, rng);
  const Matrix full = a.MatMul(b);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Matrix row(1, a.cols());
    for (std::size_t j = 0; j < a.cols(); ++j) row(0, j) = a(r, j);
    const Matrix single = row.MatMul(b);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      ASSERT_EQ(single(0, j), full(r, j)) << "row " << r << " col " << j;
    }
  }
}

MlpConfig SmallNetConfig(std::uint64_t seed) {
  MlpConfig config;
  config.input_dim = 11;
  config.hidden = {32, 16};
  config.output_dim = 3;
  config.seed = seed;
  return config;
}

TEST(BatchForwardTest, PredictBatchMatchesForwardBitwise) {
  for (const std::uint64_t seed : {1u, 7u, 21u}) {
    Mlp net(SmallNetConfig(seed));
    util::Rng rng(seed + 100);
    for (const std::size_t batch : {1ul, 2ul, 5ul, 33ul}) {
      Matrix x(batch, 11);
      for (double& v : x.data()) v = rng.Uniform(-3.0, 3.0);
      const Matrix trained = net.Forward(x);
      const Matrix inferred = net.PredictBatch(x);
      ASSERT_EQ(trained.rows(), inferred.rows());
      for (std::size_t i = 0; i < trained.size(); ++i) {
        ASSERT_EQ(trained.data()[i], inferred.data()[i])
            << "seed " << seed << " batch " << batch << " at " << i;
      }
    }
  }
}

TEST(BatchForwardTest, PredictMatchesBatchRowBitwise) {
  Mlp net(SmallNetConfig(5));
  util::Rng rng(55);
  Matrix x(17, 11);
  for (double& v : x.data()) v = rng.Uniform(-3.0, 3.0);
  const Matrix batched = net.PredictBatch(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const std::vector<double> row(x.data().begin() + r * 11,
                                  x.data().begin() + (r + 1) * 11);
    const std::vector<double> single = net.Predict(row);
    ASSERT_EQ(single.size(), batched.cols());
    for (std::size_t j = 0; j < single.size(); ++j) {
      ASSERT_EQ(single[j], batched(r, j)) << "row " << r << " out " << j;
    }
  }
}

TEST(BatchForwardTest, PredictBatchDoesNotPerturbTrainingCache) {
  // Evaluation between Forward and Backward must not corrupt the gradient
  // step: run the identical Forward/Backward sequence on two weight-equal
  // networks, interleave heavy PredictBatch traffic into one, and require
  // bitwise-equal weights afterwards.
  Mlp clean(SmallNetConfig(9));
  Mlp noisy(SmallNetConfig(9));
  util::Rng rng(99);
  Matrix x(8, 11), targets(8, 3), probe(64, 11);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  for (double& v : targets.data()) v = rng.Uniform(-1.0, 1.0);
  for (double& v : probe.data()) v = rng.Uniform(-5.0, 5.0);

  for (int step = 0; step < 5; ++step) {
    clean.Forward(x);
    noisy.Forward(x);
    noisy.PredictBatch(probe);  // inference between Forward and Backward
    const double loss_clean = clean.Backward(targets);
    const double loss_noisy = noisy.Backward(targets);
    ASSERT_EQ(loss_clean, loss_noisy) << "step " << step;
  }
  const std::vector<double> w_clean = clean.SaveWeights();
  const std::vector<double> w_noisy = noisy.SaveWeights();
  ASSERT_EQ(w_clean.size(), w_noisy.size());
  for (std::size_t i = 0; i < w_clean.size(); ++i) {
    ASSERT_EQ(w_clean[i], w_noisy[i]) << "weight " << i;
  }
}

TEST(BatchForwardTest, ConcurrentPredictBatchReadersAgree) {
  // PredictBatch is const and cache-free, so any number of threads may
  // score batches on one shared network. Run under the tsan preset via the
  // suite's `concurrency` label.
  const Mlp net(SmallNetConfig(3));
  util::Rng rng(31);
  Matrix x(16, 11);
  for (double& v : x.data()) v = rng.Uniform(-2.0, 2.0);
  const Matrix expected = net.PredictBatch(x);

  constexpr int kThreads = 4;
  std::vector<Matrix> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int rep = 0; rep < 50; ++rep) results[t] = net.PredictBatch(x);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(results[t].data()[i], expected.data()[i])
          << "thread " << t << " at " << i;
    }
  }
}

}  // namespace
}  // namespace mobirescue::ml
