#include "ml/svm/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

namespace mobirescue::ml {
namespace {

TEST(KernelTest, LinearIsDotProduct) {
  KernelConfig config{KernelType::kLinear};
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(EvalKernel(config, x, y), 4.0 - 10.0 + 18.0);
}

TEST(KernelTest, RbfIsOneAtIdentity) {
  KernelConfig config{KernelType::kRbf, 0.7};
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(EvalKernel(config, x, x), 1.0);
}

TEST(KernelTest, RbfDecaysWithDistance) {
  KernelConfig config{KernelType::kRbf, 0.5};
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> near = {0.1, 0.0};
  const std::vector<double> far = {3.0, 0.0};
  EXPECT_GT(EvalKernel(config, x, near), EvalKernel(config, x, far));
  EXPECT_NEAR(EvalKernel(config, x, far), std::exp(-0.5 * 9.0), 1e-12);
}

TEST(KernelTest, PolynomialMatchesFormula) {
  KernelConfig config;
  config.type = KernelType::kPolynomial;
  config.degree = 2;
  config.coef0 = 1.0;
  const std::vector<double> x = {1.0, 1.0};
  const std::vector<double> y = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(EvalKernel(config, x, y), 36.0);  // (5 + 1)^2
}

TEST(KernelTest, SymmetricInArguments) {
  for (KernelType type :
       {KernelType::kLinear, KernelType::kRbf, KernelType::kPolynomial}) {
    KernelConfig config;
    config.type = type;
    const std::vector<double> x = {0.3, -1.2, 2.0};
    const std::vector<double> y = {1.1, 0.4, -0.7};
    EXPECT_DOUBLE_EQ(EvalKernel(config, x, y), EvalKernel(config, y, x));
  }
}

TEST(KernelTest, DimensionMismatchThrows) {
  KernelConfig config;
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(EvalKernel(config, x, y), std::invalid_argument);
}

TEST(KernelTest, Names) {
  EXPECT_EQ(KernelName(KernelType::kLinear), "linear");
  EXPECT_EQ(KernelName(KernelType::kRbf), "rbf");
  EXPECT_EQ(KernelName(KernelType::kPolynomial), "poly");
}

}  // namespace
}  // namespace mobirescue::ml
