#include "ml/nn/matrix.hpp"

#include <gtest/gtest.h>

namespace mobirescue::ml {
namespace {

Matrix Make(std::size_t r, std::size_t c, std::initializer_list<double> vals) {
  Matrix m(r, c);
  auto it = vals.begin();
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = *it++;
  }
  return m;
}

TEST(MatrixTest, MatMulKnownResult) {
  const Matrix a = Make(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = Make(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, MatMulShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.MatMul(b), std::invalid_argument);
}

TEST(MatrixTest, TransposedMatMulEqualsExplicitTranspose) {
  const Matrix a = Make(3, 2, {1, 2, 3, 4, 5, 6});  // a^T is 2x3
  const Matrix b = Make(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.TransposedMatMul(b);  // (2x3)*(3x2) -> 2x2
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 3 * 9 + 5 * 11);
  EXPECT_DOUBLE_EQ(c(1, 1), 2 * 8 + 4 * 10 + 6 * 12);
}

TEST(MatrixTest, MatMulTransposedEqualsExplicitTranspose) {
  const Matrix a = Make(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = Make(2, 3, {7, 8, 9, 10, 11, 12});  // b^T is 3x2
  const Matrix c = a.MatMulTransposed(b);  // (2x3)*(3x2) -> 2x2
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 2 * 8 + 3 * 9);
  EXPECT_DOUBLE_EQ(c(1, 0), 4 * 7 + 5 * 8 + 6 * 9);
}

TEST(MatrixTest, AddRowVectorBroadcasts) {
  Matrix m = Make(2, 2, {1, 2, 3, 4});
  const Matrix row = Make(1, 2, {10, 20});
  m.AddRowVector(row);
  EXPECT_DOUBLE_EQ(m(0, 0), 11);
  EXPECT_DOUBLE_EQ(m(1, 1), 24);
  EXPECT_THROW(m.AddRowVector(Make(1, 3, {1, 2, 3})), std::invalid_argument);
}

TEST(MatrixTest, HadamardAndColSum) {
  const Matrix a = Make(2, 2, {1, 2, 3, 4});
  const Matrix b = Make(2, 2, {5, 6, 7, 8});
  const Matrix h = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 5);
  EXPECT_DOUBLE_EQ(h(1, 1), 32);
  const Matrix s = a.ColSum();
  ASSERT_EQ(s.rows(), 1u);
  EXPECT_DOUBLE_EQ(s(0, 0), 4);
  EXPECT_DOUBLE_EQ(s(0, 1), 6);
}

TEST(MatrixTest, ApplyAndMap) {
  Matrix m = Make(1, 3, {-1, 0, 2});
  const Matrix relu = m.Map([](double x) { return x > 0 ? x : 0.0; });
  EXPECT_DOUBLE_EQ(relu(0, 0), 0);
  EXPECT_DOUBLE_EQ(relu(0, 2), 2);
  m.Apply([](double x) { return x * 10; });
  EXPECT_DOUBLE_EQ(m(0, 0), -10);
}

}  // namespace
}  // namespace mobirescue::ml
