#include "ml/svm/metrics.hpp"

#include <gtest/gtest.h>

namespace mobirescue::ml {
namespace {

TEST(MetricsTest, CountsCellsCorrectly) {
  ConfusionMatrix cm;
  cm.Add(true, true);    // TP
  cm.Add(true, true);    // TP
  cm.Add(false, true);   // FP
  cm.Add(false, false);  // TN
  cm.Add(true, false);   // FN
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.total(), 5u);
}

TEST(MetricsTest, PaperFormulas) {
  ConfusionMatrix cm;
  cm.tp = 40;
  cm.tn = 30;
  cm.fp = 20;
  cm.fn = 10;
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.70);
  EXPECT_NEAR(cm.Precision(), 40.0 / 60.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.80);
  const double p = cm.Precision(), r = cm.Recall();
  EXPECT_NEAR(cm.F1(), 2 * p * r / (p + r), 1e-12);
}

TEST(MetricsTest, EmptyAndDegenerateAreZeroNotNan) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.0);
  cm.tn = 5;  // no positives anywhere
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.0);
}

}  // namespace
}  // namespace mobirescue::ml
