#include "ml/nn/mlp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobirescue::ml {
namespace {

MlpConfig SmallNet() {
  MlpConfig config;
  config.input_dim = 2;
  config.hidden = {16, 16};
  config.output_dim = 1;
  config.learning_rate = 5e-3;
  config.loss = LossKind::kMse;
  return config;
}

TEST(MlpTest, OutputShapeAndDeterminism) {
  Mlp a(SmallNet()), b(SmallNet());
  const std::vector<double> x = {0.3, -0.7};
  EXPECT_EQ(a.Predict(x).size(), 1u);
  EXPECT_DOUBLE_EQ(a.Predict(x)[0], b.Predict(x)[0]);
}

TEST(MlpTest, LearnsLinearFunction) {
  Mlp net(SmallNet());
  util::Rng rng(3);
  // y = 2 x0 - x1 + 0.5
  for (int step = 0; step < 3000; ++step) {
    Matrix batch(16, 2), target(16, 1);
    for (int i = 0; i < 16; ++i) {
      const double x0 = rng.Uniform(-1, 1), x1 = rng.Uniform(-1, 1);
      batch(i, 0) = x0;
      batch(i, 1) = x1;
      target(i, 0) = 2 * x0 - x1 + 0.5;
    }
    net.Forward(batch);
    net.Backward(target);
  }
  double max_err = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.Uniform(-1, 1), x1 = rng.Uniform(-1, 1);
    const double y = net.Predict(std::vector<double>{x0, x1})[0];
    max_err = std::max(max_err, std::abs(y - (2 * x0 - x1 + 0.5)));
  }
  EXPECT_LT(max_err, 0.15);
}

TEST(MlpTest, LearnsNonlinearFunction) {
  MlpConfig config = SmallNet();
  config.hidden = {32, 32};
  Mlp net(config);
  util::Rng rng(4);
  // y = x0 * x1 (requires the hidden layers).
  for (int step = 0; step < 6000; ++step) {
    Matrix batch(16, 2), target(16, 1);
    for (int i = 0; i < 16; ++i) {
      const double x0 = rng.Uniform(-1, 1), x1 = rng.Uniform(-1, 1);
      batch(i, 0) = x0;
      batch(i, 1) = x1;
      target(i, 0) = x0 * x1;
    }
    net.Forward(batch);
    net.Backward(target);
  }
  double sq_err = 0.0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1, 1), x1 = rng.Uniform(-1, 1);
    const double y = net.Predict(std::vector<double>{x0, x1})[0];
    sq_err += (y - x0 * x1) * (y - x0 * x1);
  }
  EXPECT_LT(sq_err / n, 0.02);
}

TEST(MlpTest, LossDecreasesOnFixedBatch) {
  Mlp net(SmallNet());
  Matrix batch(4, 2), target(4, 1);
  batch(0, 0) = 0;  batch(0, 1) = 0;  target(0, 0) = 1;
  batch(1, 0) = 1;  batch(1, 1) = 0;  target(1, 0) = -1;
  batch(2, 0) = 0;  batch(2, 1) = 1;  target(2, 0) = 2;
  batch(3, 0) = 1;  batch(3, 1) = 1;  target(3, 0) = 0;
  net.Forward(batch);
  const double first = net.Backward(target);
  double last = first;
  for (int i = 0; i < 200; ++i) {
    net.Forward(batch);
    last = net.Backward(target);
  }
  EXPECT_LT(last, first * 0.1);
}

TEST(MlpTest, MaskRestrictsLoss) {
  Mlp net([] {
    MlpConfig c;
    c.input_dim = 1;
    c.hidden = {8};
    c.output_dim = 2;
    return c;
  }());
  Matrix batch(1, 1);
  batch(0, 0) = 1.0;
  Matrix target(1, 2);
  target(0, 0) = 100.0;   // masked out: must not affect training
  target(0, 1) = 0.5;
  Matrix mask(1, 2);
  mask(0, 0) = 0.0;
  mask(0, 1) = 1.0;
  for (int i = 0; i < 500; ++i) {
    net.Forward(batch);
    net.Backward(target, &mask);
  }
  const auto out = net.Predict(std::vector<double>{1.0});
  EXPECT_NEAR(out[1], 0.5, 0.05);
  EXPECT_LT(std::abs(out[0]), 50.0);  // never dragged toward 100
}

TEST(MlpTest, CopyAndSoftUpdate) {
  Mlp a(SmallNet()), b([] {
    MlpConfig c = SmallNet();
    c.seed = 999;
    return c;
  }());
  const std::vector<double> x = {0.5, 0.5};
  EXPECT_NE(a.Predict(x)[0], b.Predict(x)[0]);
  b.CopyWeightsFrom(a);
  EXPECT_DOUBLE_EQ(a.Predict(x)[0], b.Predict(x)[0]);

  Mlp c([] {
    MlpConfig cc = SmallNet();
    cc.seed = 777;
    return cc;
  }());
  const double before = c.Predict(x)[0];
  c.SoftUpdateFrom(a, 1.0);  // tau=1 -> exact copy
  EXPECT_DOUBLE_EQ(c.Predict(x)[0], a.Predict(x)[0]);
  EXPECT_NE(c.Predict(x)[0], before);
}

TEST(MlpTest, SaveLoadRoundTrip) {
  Mlp a(SmallNet());
  const auto weights = a.SaveWeights();
  EXPECT_EQ(weights.size(), a.num_parameters());
  Mlp b([] {
    MlpConfig c = SmallNet();
    c.seed = 4242;
    return c;
  }());
  b.LoadWeights(weights);
  const std::vector<double> x = {-0.2, 0.9};
  EXPECT_DOUBLE_EQ(a.Predict(x)[0], b.Predict(x)[0]);
  EXPECT_THROW(b.LoadWeights(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(MlpTest, RejectsBadShapes) {
  Mlp net(SmallNet());
  EXPECT_THROW(net.Predict(std::vector<double>{1.0}), std::invalid_argument);
  Matrix bad(1, 3);
  EXPECT_THROW(net.Forward(bad), std::invalid_argument);
  MlpConfig zero;
  zero.input_dim = 0;
  EXPECT_THROW(Mlp{zero}, std::invalid_argument);
}

}  // namespace
}  // namespace mobirescue::ml
