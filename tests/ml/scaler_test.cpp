#include "ml/svm/scaler.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace mobirescue::ml {
namespace {

TEST(ScalerTest, TransformsToZeroMeanUnitVariance) {
  FeatureScaler scaler;
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({static_cast<double>(i), 100.0 + 3.0 * i});
  }
  scaler.Fit(rows);
  const auto scaled = scaler.TransformAll(rows);

  std::vector<double> col0, col1;
  for (const auto& r : scaled) {
    col0.push_back(r[0]);
    col1.push_back(r[1]);
  }
  EXPECT_NEAR(util::Mean(col0), 0.0, 1e-10);
  EXPECT_NEAR(util::StdDev(col0), 1.0, 1e-10);
  EXPECT_NEAR(util::Mean(col1), 0.0, 1e-10);
  EXPECT_NEAR(util::StdDev(col1), 1.0, 1e-10);
}

TEST(ScalerTest, ConstantFeaturePassesThroughCentred) {
  FeatureScaler scaler;
  std::vector<std::vector<double>> rows = {{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  scaler.Fit(rows);
  for (const auto& r : scaler.TransformAll(rows)) {
    EXPECT_DOUBLE_EQ(r[0], 0.0);
  }
}

TEST(ScalerTest, RejectsBadInput) {
  FeatureScaler scaler;
  EXPECT_THROW(scaler.Fit({}), std::invalid_argument);
  std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(scaler.Fit(ragged), std::invalid_argument);
  std::vector<std::vector<double>> rows = {{1.0, 2.0}, {3.0, 4.0}};
  scaler.Fit(rows);
  EXPECT_THROW(scaler.Transform(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(ScalerTest, FittedFlagAndAccessors) {
  FeatureScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  std::vector<std::vector<double>> rows = {{1.0}, {3.0}};
  scaler.Fit(rows);
  EXPECT_TRUE(scaler.fitted());
  EXPECT_DOUBLE_EQ(scaler.mean()[0], 2.0);
  EXPECT_DOUBLE_EQ(scaler.stddev()[0], 1.0);
}

}  // namespace
}  // namespace mobirescue::ml
