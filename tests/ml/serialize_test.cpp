#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace mobirescue::ml {
namespace {

SvmModel TrainToy(std::uint64_t seed) {
  util::Rng rng(seed);
  SvmDataset data;
  for (int i = 0; i < 60; ++i) {
    const bool positive = i % 2 == 0;
    data.Add({(positive ? 2.0 : -2.0) + rng.Normal(0, 0.4),
              rng.Normal(0, 0.4)},
             positive ? 1 : -1);
  }
  return TrainSvm(data, SvmConfig{});
}

TEST(SerializeTest, SvmRoundTripPreservesDecisions) {
  const SvmModel original = TrainToy(1);
  std::stringstream buffer;
  SaveSvm(original, buffer);
  const SvmModel loaded = LoadSvm(buffer);

  EXPECT_EQ(loaded.num_support_vectors(), original.num_support_vectors());
  EXPECT_DOUBLE_EQ(loaded.bias(), original.bias());
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    EXPECT_DOUBLE_EQ(original.DecisionValue(x), loaded.DecisionValue(x));
  }
}

TEST(SerializeTest, SvmRejectsGarbage) {
  std::stringstream buffer("not-a-model 1 2 3");
  EXPECT_THROW(LoadSvm(buffer), std::runtime_error);
  std::stringstream truncated("mobirescue-svm-v1\n1 0.5 3 1.0\n5 2 0.1\n");
  EXPECT_THROW(LoadSvm(truncated), std::runtime_error);
}

TEST(SerializeTest, ScalerRoundTrip) {
  FeatureScaler scaler;
  std::vector<std::vector<double>> rows = {{1.0, 10.0}, {3.0, 30.0},
                                           {5.0, 20.0}};
  scaler.Fit(rows);
  std::stringstream buffer;
  SaveScaler(scaler, buffer);
  const FeatureScaler loaded = LoadScaler(buffer);
  const std::vector<double> probe = {2.0, 25.0};
  EXPECT_EQ(scaler.Transform(probe), loaded.Transform(probe));
}

TEST(SerializeTest, MlpWeightsRoundTrip) {
  MlpConfig config;
  config.input_dim = 4;
  config.hidden = {8, 8};
  config.output_dim = 2;
  Mlp original(config);

  std::stringstream buffer;
  SaveMlpWeights(original, buffer);

  config.seed = 999;  // different random init
  Mlp loaded(config);
  LoadMlpWeights(loaded, buffer);
  const std::vector<double> x = {0.1, -0.2, 0.3, -0.4};
  EXPECT_EQ(original.Predict(x), loaded.Predict(x));
}

TEST(SerializeTest, MlpTopologyMismatchRejected) {
  MlpConfig a;
  a.input_dim = 4;
  a.hidden = {8};
  Mlp net_a(a);
  std::stringstream buffer;
  SaveMlpWeights(net_a, buffer);

  MlpConfig b;
  b.input_dim = 5;
  b.hidden = {8};
  Mlp net_b(b);
  EXPECT_THROW(LoadMlpWeights(net_b, buffer), std::runtime_error);
}

TEST(SerializeTest, FileRoundTrip) {
  const SvmModel original = TrainToy(3);
  const std::string path = ::testing::TempDir() + "/svm_checkpoint.txt";
  SaveSvmToFile(original, path);
  const SvmModel loaded = LoadSvmFromFile(path);
  EXPECT_EQ(loaded.num_support_vectors(), original.num_support_vectors());
  EXPECT_THROW(LoadSvmFromFile("/nonexistent/path/model.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace mobirescue::ml
