// Parity tests for the SVM fast paths: batched DecisionValues must be
// bit-identical to per-row DecisionValue for every kernel type, and SMO
// with the error cache must train models equivalent in quality to the
// scalar recompute-everything reference.
#include <gtest/gtest.h>

#include <vector>

#include "ml/svm/svm.hpp"
#include "util/rng.hpp"

namespace mobirescue::ml {
namespace {

SvmDataset TwoBlobs(std::size_t n, util::Rng& rng) {
  SvmDataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double cx = positive ? 1.5 : -1.5;
    data.Add({cx + rng.Normal(0, 0.8), rng.Normal(0, 0.8)}, positive ? 1 : -1);
  }
  return data;
}

class SvmBatchKernelTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(SvmBatchKernelTest, DecisionValuesMatchPerRowBitwise) {
  util::Rng rng(41);
  const SvmDataset data = TwoBlobs(90, rng);
  SvmConfig config;
  config.kernel.type = GetParam();
  config.kernel.gamma = 0.7;
  const SvmModel model = TrainSvm(data, config);
  ASSERT_GT(model.num_support_vectors(), 0u);

  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({rng.Uniform(-3, 3), rng.Uniform(-3, 3)});
  }
  const std::vector<double> batched = model.DecisionValues(rows);
  ASSERT_EQ(batched.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(batched[i], model.DecisionValue(rows[i]))
        << KernelName(GetParam()) << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SvmBatchKernelTest,
                         ::testing::Values(KernelType::kLinear,
                                           KernelType::kRbf,
                                           KernelType::kPolynomial),
                         [](const auto& info) { return KernelName(info.param); });

TEST(SvmBatchTest, DecisionValuesHandlesEmptyAndSingleRow) {
  util::Rng rng(42);
  const SvmDataset data = TwoBlobs(40, rng);
  const SvmModel model = TrainSvm(data, SvmConfig{});
  EXPECT_TRUE(model.DecisionValues({}).empty());
  const std::vector<std::vector<double>> one = {{0.4, -0.2}};
  const std::vector<double> values = model.DecisionValues(one);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], model.DecisionValue(one[0]));
}

TEST(SvmBatchTest, DecisionValuesRejectsRaggedRows) {
  util::Rng rng(43);
  const SvmDataset data = TwoBlobs(30, rng);
  const SvmModel model = TrainSvm(data, SvmConfig{});
  const std::vector<std::vector<double>> ragged = {{0.1, 0.2}, {0.3}};
  EXPECT_THROW(model.DecisionValues(ragged), std::invalid_argument);
}

TEST(SvmBatchTest, ErrorCacheTrainsEquivalentQualityModel) {
  // The cached and scalar SMO paths take different (FP-drift-divergent)
  // optimisation trajectories, so weights differ — but both must separate
  // the same data equally well.
  util::Rng rng(44);
  const SvmDataset data = TwoBlobs(160, rng);
  SvmConfig cached;
  SvmConfig scalar;
  scalar.use_error_cache = false;
  const SvmModel with_cache = TrainSvm(data, cached);
  const SvmModel without_cache = TrainSvm(data, scalar);

  int correct_cached = 0, correct_scalar = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (with_cache.Predict(data.x[i]) == data.y[i]) ++correct_cached;
    if (without_cache.Predict(data.x[i]) == data.y[i]) ++correct_scalar;
  }
  EXPECT_GE(correct_cached, static_cast<int>(data.size() * 9 / 10));
  EXPECT_GE(correct_scalar, static_cast<int>(data.size() * 9 / 10));
}

TEST(SvmBatchTest, ErrorCachePathIsDeterministic) {
  util::Rng rng(45);
  const SvmDataset data = TwoBlobs(80, rng);
  const SvmModel a = TrainSvm(data, SvmConfig{});
  const SvmModel b = TrainSvm(data, SvmConfig{});
  ASSERT_EQ(a.num_support_vectors(), b.num_support_vectors());
  EXPECT_EQ(a.bias(), b.bias());
  for (std::size_t i = 0; i < a.num_support_vectors(); ++i) {
    EXPECT_EQ(a.coefficient(i), b.coefficient(i)) << "sv " << i;
  }
}

}  // namespace
}  // namespace mobirescue::ml
