#include "ml/svm/svm.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobirescue::ml {
namespace {

SvmDataset LinearlySeparable(int n, util::Rng& rng) {
  // Two Gaussian blobs separated along x0.
  SvmDataset data;
  for (int i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double cx = positive ? 2.0 : -2.0;
    data.Add({cx + rng.Normal(0, 0.5), rng.Normal(0, 0.5)}, positive ? 1 : -1);
  }
  return data;
}

TEST(SvmTest, LearnsLinearlySeparableWithLinearKernel) {
  util::Rng rng(1);
  const SvmDataset data = LinearlySeparable(120, rng);
  SvmConfig config;
  config.kernel.type = KernelType::kLinear;
  const SvmModel model = TrainSvm(data, config);

  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.Predict(data.x[i]) == data.y[i]) ++correct;
  }
  EXPECT_GE(correct, 114);  // >= 95%
  EXPECT_GT(model.num_support_vectors(), 0u);
  EXPECT_LT(model.num_support_vectors(), data.size());
}

TEST(SvmTest, LearnsXorWithRbfKernel) {
  // XOR pattern is not linearly separable; RBF must handle it (the paper's
  // stated reason for choosing a kernel SVM).
  util::Rng rng(2);
  SvmDataset data;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-1, 1);
    const double y = rng.Uniform(-1, 1);
    data.Add({x, y}, (x * y > 0) ? 1 : -1);
  }
  SvmConfig config;
  config.kernel.type = KernelType::kRbf;
  config.kernel.gamma = 2.0;
  config.c = 5.0;
  const SvmModel model = TrainSvm(data, config);

  int correct = 0;
  int total = 0;
  util::Rng test_rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x = test_rng.Uniform(-1, 1);
    const double y = test_rng.Uniform(-1, 1);
    if (std::abs(x * y) < 0.05) continue;  // skip boundary ambiguity
    ++total;
    if (model.Predict(std::vector<double>{x, y}) == ((x * y > 0) ? 1 : -1)) {
      ++correct;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / total, 0.85);
}

TEST(SvmTest, DecisionValueSignMatchesPrediction) {
  util::Rng rng(4);
  const SvmDataset data = LinearlySeparable(60, rng);
  SvmConfig config;
  const SvmModel model = TrainSvm(data, config);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double v = model.DecisionValue(data.x[i]);
    EXPECT_EQ(model.Predict(data.x[i]), v >= 0 ? 1 : -1);
  }
}

TEST(SvmTest, DeterministicForSameSeed) {
  util::Rng rng(5);
  const SvmDataset data = LinearlySeparable(80, rng);
  SvmConfig config;
  const SvmModel a = TrainSvm(data, config);
  const SvmModel b = TrainSvm(data, config);
  EXPECT_EQ(a.num_support_vectors(), b.num_support_vectors());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(SvmTest, DatasetValidatesLabels) {
  SvmDataset data;
  EXPECT_THROW(data.Add({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(data.Add({1.0}, 2), std::invalid_argument);
  data.Add({1.0}, 1);
  data.Add({2.0}, -1);
  EXPECT_EQ(data.size(), 2u);
}

TEST(SvmTest, EmptyDatasetThrows) {
  EXPECT_THROW(TrainSvm(SvmDataset{}, SvmConfig{}), std::invalid_argument);
}

TEST(SvmTest, SingleClassDataStillPredictsThatClass) {
  SvmDataset data;
  util::Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    data.Add({rng.Normal(1.0, 0.1), rng.Normal(1.0, 0.1)}, 1);
  }
  const SvmModel model = TrainSvm(data, SvmConfig{});
  EXPECT_EQ(model.Predict(std::vector<double>{1.0, 1.0}), 1);
}

class SvmKernelSweepTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(SvmKernelSweepTest, AllKernelsSeparateEasyData) {
  util::Rng rng(7);
  const SvmDataset data = LinearlySeparable(100, rng);
  SvmConfig config;
  config.kernel.type = GetParam();
  config.kernel.gamma = 0.5;
  const SvmModel model = TrainSvm(data, config);
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.Predict(data.x[i]) == data.y[i]) ++correct;
  }
  EXPECT_GE(correct, 90) << KernelName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SvmKernelSweepTest,
                         ::testing::Values(KernelType::kLinear,
                                           KernelType::kRbf,
                                           KernelType::kPolynomial),
                         [](const auto& info) { return KernelName(info.param); });

}  // namespace
}  // namespace mobirescue::ml
