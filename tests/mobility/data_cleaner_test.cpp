#include "mobility/data_cleaner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace mobirescue::mobility {
namespace {

GpsRecord Rec(PersonId person, double t, double lat, double lon) {
  GpsRecord r;
  r.person = person;
  r.t = t;
  r.pos = {lat, lon};
  return r;
}

CleaningConfig Config() {
  CleaningConfig config;
  config.box = util::kCharlotteCropBox;
  return config;
}

TEST(DataCleanerTest, DropsOutOfBox) {
  GpsTrace trace = {Rec(0, 0, 35.7, -78.9), Rec(0, 100, 10.0, 10.0)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.out_of_box, 1u);
  EXPECT_EQ(stats.kept, 1u);
  EXPECT_EQ(stats.input, 2u);
}

TEST(DataCleanerTest, DropsDuplicates) {
  GpsTrace trace = {Rec(0, 0, 35.7, -78.9), Rec(0, 0.5, 35.7, -78.9),
                    Rec(0, 100, 35.7, -78.9)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.duplicates, 1u);
}

TEST(DataCleanerTest, DropsTeleports) {
  // 0.1 degrees (~11 km) in 10 seconds = 1100 m/s: a GPS glitch.
  GpsTrace trace = {Rec(0, 0, 35.70, -78.9), Rec(0, 10, 35.80, -78.9),
                    Rec(0, 20, 35.70, -78.9)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.teleports, 1u);
}

TEST(DataCleanerTest, PersonBoundaryResetsChecks) {
  // Same position/time "jump" across different people must not be flagged.
  GpsTrace trace = {Rec(0, 100, 35.70, -78.9), Rec(1, 100.2, 35.79, -78.7)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.teleports, 0u);
}

TEST(DataCleanerTest, EmptyInput) {
  CleaningStats stats;
  EXPECT_TRUE(CleanTrace({}, Config(), &stats).empty());
  EXPECT_EQ(stats.input, 0u);
}

TEST(DataCleanerTest, NullStatsAccepted) {
  GpsTrace trace = {Rec(0, 0, 35.7, -78.9)};
  EXPECT_EQ(CleanTrace(trace, Config(), nullptr).size(), 1u);
}

TEST(DataCleanerTest, DropsNonFiniteRecords) {
  GpsTrace trace = {Rec(0, 0, 35.7, -78.9),
                    Rec(0, 100, std::numeric_limits<double>::quiet_NaN(), -78.9),
                    Rec(0, 200, 35.7, std::numeric_limits<double>::infinity()),
                    Rec(0, 300, 35.7, -78.9)};
  trace.back().speed_mps = std::numeric_limits<double>::quiet_NaN();
  GpsTrace nan_t = {Rec(1, std::numeric_limits<double>::quiet_NaN(), 35.7, -78.9)};
  trace.push_back(nan_t[0]);

  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.non_finite, 4u);
  EXPECT_EQ(stats.kept, 1u);
}

TEST(DataCleanerTest, DropsOutOfOrderRecords) {
  // A record strictly older than the person's last kept record is a sensor
  // fault, not a duplicate: counted separately and never compared by the
  // speed filter (a negative dt would flip its sign).
  GpsTrace trace = {Rec(0, 100, 35.70, -78.9), Rec(0, 50, 35.71, -78.9),
                    Rec(0, 200, 35.70, -78.9)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.out_of_order, 1u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.teleports, 0u);
}

TEST(DataCleanerTest, InterleavedPeopleAreFilteredPerPerson) {
  // The regression the per-person history map fixes: with people
  // interleaved record-by-record, the duplicate and teleport filters must
  // still fire (comparing only against the *same* person's last kept
  // record, not the previous record in the trace).
  GpsTrace trace = {
      Rec(0, 0.0, 35.70, -78.9),  Rec(1, 0.1, 35.75, -78.8),
      Rec(0, 0.5, 35.70, -78.9),          // duplicate of person 0's first
      Rec(1, 10.0, 35.75, -78.8),         // fine for person 1
      Rec(0, 10.0, 35.80, -78.9),         // teleport for person 0 (~11 km/10 s)
      Rec(1, 20.0, 35.751, -78.8),        // fine
  };
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.teleports, 1u);
  EXPECT_EQ(out.size(), 4u);
}

TEST(DataCleanerTest, InterleavedCleanEqualsPerPersonClean) {
  // Property: because every filter consults only per-person history,
  // cleaning an interleaved multi-person trace must keep exactly the union
  // of what cleaning each person's records alone keeps.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng(seed);
    constexpr int kPeople = 6;
    GpsTrace interleaved;
    std::vector<GpsTrace> solo(kPeople);
    std::vector<double> clock(kPeople, 0.0);
    for (int i = 0; i < 400; ++i) {
      const int p =
          std::min(kPeople - 1, static_cast<int>(rng.Uniform(0.0, kPeople)));
      // A mix of clean steps, duplicates, jumps, rewinds and NaNs.
      const double roll = rng.Uniform(0.0, 1.0);
      GpsRecord r = Rec(p, clock[p], 35.7 + rng.Uniform(0.0, 0.05),
                        -78.9 + rng.Uniform(0.0, 0.05));
      if (roll < 0.15) {
        r.t = clock[p] + rng.Uniform(0.0, 0.5);  // duplicate window
      } else if (roll < 0.25) {
        r.t = clock[p] - rng.Uniform(1.0, 50.0);  // rewind
      } else if (roll < 0.3) {
        r.pos.lat = std::numeric_limits<double>::quiet_NaN();
        r.t = clock[p] + 30.0;
      } else if (roll < 0.4) {
        r.pos.lat = 35.7 + rng.Uniform(0.3, 0.5);  // teleport-far hop
        r.t = clock[p] + 10.0;
      } else {
        r.t = clock[p] + rng.Uniform(5.0, 120.0);
      }
      clock[p] = std::max(clock[p], r.t);
      interleaved.push_back(r);
      solo[p].push_back(r);
    }

    const GpsTrace got = CleanTrace(interleaved, Config(), nullptr);
    GpsTrace want;
    for (const GpsTrace& one : solo) {
      const GpsTrace kept = CleanTrace(one, Config(), nullptr);
      want.insert(want.end(), kept.begin(), kept.end());
    }
    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    // Compare as per-person subsequences (the interleaving differs).
    auto key = [](const GpsRecord& r) {
      return std::make_tuple(r.person, r.t, r.pos.lat, r.pos.lon);
    };
    auto by_key = [&key](const GpsRecord& a, const GpsRecord& b) {
      return key(a) < key(b);
    };
    std::sort(want.begin(), want.end(), by_key);
    GpsTrace got_sorted = got;
    std::sort(got_sorted.begin(), got_sorted.end(), by_key);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(key(got_sorted[i]), key(want[i])) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mobirescue::mobility
