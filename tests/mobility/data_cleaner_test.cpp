#include "mobility/data_cleaner.hpp"

#include <gtest/gtest.h>

namespace mobirescue::mobility {
namespace {

GpsRecord Rec(PersonId person, double t, double lat, double lon) {
  GpsRecord r;
  r.person = person;
  r.t = t;
  r.pos = {lat, lon};
  return r;
}

CleaningConfig Config() {
  CleaningConfig config;
  config.box = util::kCharlotteCropBox;
  return config;
}

TEST(DataCleanerTest, DropsOutOfBox) {
  GpsTrace trace = {Rec(0, 0, 35.7, -78.9), Rec(0, 100, 10.0, 10.0)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.out_of_box, 1u);
  EXPECT_EQ(stats.kept, 1u);
  EXPECT_EQ(stats.input, 2u);
}

TEST(DataCleanerTest, DropsDuplicates) {
  GpsTrace trace = {Rec(0, 0, 35.7, -78.9), Rec(0, 0.5, 35.7, -78.9),
                    Rec(0, 100, 35.7, -78.9)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.duplicates, 1u);
}

TEST(DataCleanerTest, DropsTeleports) {
  // 0.1 degrees (~11 km) in 10 seconds = 1100 m/s: a GPS glitch.
  GpsTrace trace = {Rec(0, 0, 35.70, -78.9), Rec(0, 10, 35.80, -78.9),
                    Rec(0, 20, 35.70, -78.9)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.teleports, 1u);
}

TEST(DataCleanerTest, PersonBoundaryResetsChecks) {
  // Same position/time "jump" across different people must not be flagged.
  GpsTrace trace = {Rec(0, 100, 35.70, -78.9), Rec(1, 100.2, 35.79, -78.7)};
  CleaningStats stats;
  const GpsTrace out = CleanTrace(trace, Config(), &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.teleports, 0u);
}

TEST(DataCleanerTest, EmptyInput) {
  CleaningStats stats;
  EXPECT_TRUE(CleanTrace({}, Config(), &stats).empty());
  EXPECT_EQ(stats.input, 0u);
}

TEST(DataCleanerTest, NullStatsAccepted) {
  GpsTrace trace = {Rec(0, 0, 35.7, -78.9)};
  EXPECT_EQ(CleanTrace(trace, Config(), nullptr).size(), 1u);
}

}  // namespace
}  // namespace mobirescue::mobility
