#include "mobility/flow_rate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "roadnet/city_builder.hpp"

namespace mobirescue::mobility {
namespace {

class FlowRateTest : public ::testing::Test {
 protected:
  FlowRateTest() {
    roadnet::CityConfig config;
    config.grid_width = 6;
    config.grid_height = 6;
    city_ = roadnet::BuildCity(config);
  }

  MatchedRecord Moving(PersonId p, double t, roadnet::SegmentId seg) {
    return {p, t, seg, 10.0, {}};
  }
  MatchedRecord Still(PersonId p, double t, roadnet::SegmentId seg) {
    return {p, t, seg, 0.0, {}};
  }

  roadnet::City city_;
};

TEST_F(FlowRateTest, CountsOneVehiclePerPersonPerHour) {
  FlowRateAnalyzer analyzer(city_.network, 48);
  // Person 0 pings three times on segment 3 within hour 2: one vehicle.
  analyzer.Ingest({Moving(0, 7200, 3), Moving(0, 7500, 3), Moving(0, 7900, 3)});
  EXPECT_DOUBLE_EQ(analyzer.SegmentFlow(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(analyzer.SegmentFlow(3, 1), 0.0);
}

TEST_F(FlowRateTest, DistinctPeopleAccumulate) {
  FlowRateAnalyzer analyzer(city_.network, 48);
  analyzer.Ingest({Moving(0, 7200, 3), Moving(1, 7300, 3), Moving(2, 7400, 3)});
  EXPECT_DOUBLE_EQ(analyzer.SegmentFlow(3, 2), 3.0);
}

TEST_F(FlowRateTest, StationaryRecordsIgnored) {
  FlowRateAnalyzer analyzer(city_.network, 48);
  analyzer.Ingest({Still(0, 7200, 3), Still(1, 7300, 3)});
  EXPECT_DOUBLE_EQ(analyzer.SegmentFlow(3, 2), 0.0);
}

TEST_F(FlowRateTest, RegionFlowAveragesOverSegments) {
  FlowRateAnalyzer analyzer(city_.network, 24);
  const auto region_segs = city_.network.SegmentsInRegion(1);
  ASSERT_GE(region_segs.size(), 2u);
  // One vehicle on exactly one segment of region 1 during hour 0.
  analyzer.Ingest({Moving(0, 100, region_segs[0])});
  const double expected = 1.0 / static_cast<double>(region_segs.size());
  EXPECT_NEAR(analyzer.RegionFlow(1, 0), expected, 1e-12);
}

TEST_F(FlowRateTest, DayProfileHas24Entries) {
  FlowRateAnalyzer analyzer(city_.network, 72);
  const auto profile = analyzer.RegionDayProfile(1, 2);
  EXPECT_EQ(profile.size(), 24u);
}

TEST_F(FlowRateTest, SegmentDailyFlowDifference) {
  FlowRateAnalyzer analyzer(city_.network, 48);
  // Segment 0: 2 vehicles/hour on day 0 hour 0, none on day 1.
  analyzer.Ingest({Moving(0, 100, 0), Moving(1, 200, 0)});
  const auto diffs = analyzer.SegmentDailyFlowDifference(0, 1);
  ASSERT_EQ(diffs.size(), city_.network.num_segments());
  EXPECT_NEAR(diffs[0], 2.0 / 24.0, 1e-12);
  EXPECT_DOUBLE_EQ(diffs[1], 0.0);
}

TEST_F(FlowRateTest, OutOfRangeHourSafe) {
  FlowRateAnalyzer analyzer(city_.network, 24);
  analyzer.Ingest({Moving(0, 100 * 3600.0, 0)});  // beyond window: ignored
  EXPECT_DOUBLE_EQ(analyzer.SegmentFlow(0, 23), 0.0);
  EXPECT_DOUBLE_EQ(analyzer.SegmentFlow(0, -1), 0.0);
}

TEST_F(FlowRateTest, RejectsBadWindow) {
  EXPECT_THROW(FlowRateAnalyzer(city_.network, 0), std::invalid_argument);
}

// Streaming regression: dedup must hold ACROSS Ingest calls. The old
// last-person-per-cell bookkeeping double-counted a person whose records
// for one (segment, hour) were split over two batches with another person
// in between.
TEST_F(FlowRateTest, SplitIngestMatchesSingleBatch) {
  const std::vector<MatchedRecord> trace = {
      Moving(0, 7200, 3), Moving(1, 7250, 3), Moving(0, 7300, 3),
      Moving(2, 7400, 5), Moving(1, 7500, 3), Moving(0, 7600, 5),
      Moving(2, 7700, 3), Moving(0, 10900, 3),
  };

  FlowRateAnalyzer whole(city_.network, 48);
  whole.Ingest(trace);

  for (std::size_t split = 0; split <= trace.size(); ++split) {
    FlowRateAnalyzer parts(city_.network, 48);
    parts.Ingest({trace.begin(), trace.begin() + split});
    parts.Ingest({trace.begin() + split, trace.end()});
    for (roadnet::SegmentId seg : {3, 5}) {
      for (int h : {1, 2, 3}) {
        EXPECT_DOUBLE_EQ(parts.SegmentFlow(seg, h), whole.SegmentFlow(seg, h))
            << "split=" << split << " seg=" << seg << " hour=" << h;
      }
    }
  }
}

// Streamed arrival order is by time with persons interleaved — not the
// by-(person, time) order the batch pipeline feeds. Flows must not depend
// on the order, nor on single-record vs batch ingestion.
TEST_F(FlowRateTest, InterleavedTimeOrderMatchesPersonOrder) {
  const std::vector<MatchedRecord> by_person = {
      Moving(0, 7200, 3), Moving(0, 7400, 3), Moving(0, 7600, 5),
      Moving(1, 7250, 3), Moving(1, 7450, 3),
      Moving(2, 7300, 5), Moving(2, 7500, 5),
  };
  std::vector<MatchedRecord> by_time = by_person;
  std::sort(by_time.begin(), by_time.end(),
            [](const MatchedRecord& a, const MatchedRecord& b) {
              return a.t < b.t;
            });

  FlowRateAnalyzer batch(city_.network, 48);
  batch.Ingest(by_person);

  FlowRateAnalyzer streamed(city_.network, 48);
  for (const MatchedRecord& m : by_time) streamed.Ingest(m);

  for (roadnet::SegmentId seg : {3, 5}) {
    for (int h : {1, 2, 3}) {
      EXPECT_DOUBLE_EQ(streamed.SegmentFlow(seg, h), batch.SegmentFlow(seg, h))
          << "seg=" << seg << " hour=" << h;
    }
  }
}

}  // namespace
}  // namespace mobirescue::mobility
