#include "mobility/hospital_detector.hpp"

#include <gtest/gtest.h>

#include "weather/scenario.hpp"

namespace mobirescue::mobility {
namespace {

class HospitalDetectorTest : public ::testing::Test {
 protected:
  HospitalDetectorTest()
      : spec_(weather::FlorenceScenario()) {
    roadnet::CityConfig config;
    config.grid_width = 8;
    config.grid_height = 8;
    config.num_hospitals = 3;
    city_ = roadnet::BuildCity(config);
    field_ = std::make_unique<weather::WeatherField>(city_.box, spec_.storm);
    flood_ = std::make_unique<weather::FloodModel>(*field_, city_.terrain);
    detector_ = std::make_unique<HospitalDeliveryDetector>(city_, *flood_);
  }

  util::GeoPoint HospitalPos(int i) const {
    return city_.network.landmark(city_.hospitals[i]).pos;
  }

  /// Finds a position that is in a flood zone at the storm end.
  util::GeoPoint FloodedPos() const {
    for (double x = 0.95; x > 0.0; x -= 0.05) {
      for (double y = 0.05; y < 1.0; y += 0.05) {
        const util::GeoPoint p = city_.box.At(x, y);
        if (flood_->InFloodZone(p, spec_.storm.storm_end_s)) return p;
      }
    }
    ADD_FAILURE() << "no flooded position found";
    return city_.box.Center();
  }

  GpsTrace StayAt(PersonId person, const util::GeoPoint& pos, double from,
                  double to, double step = 1200.0) {
    GpsTrace out;
    for (double t = from; t < to; t += step) {
      out.push_back({person, t, pos, 0.0, 0.0});
    }
    return out;
  }

  weather::ScenarioSpec spec_;
  roadnet::City city_;
  std::unique_ptr<weather::WeatherField> field_;
  std::unique_ptr<weather::FloodModel> flood_;
  std::unique_ptr<HospitalDeliveryDetector> detector_;
};

TEST_F(HospitalDetectorTest, DetectsLongStayAtHospital) {
  const double t0 = spec_.storm.storm_end_s;
  GpsTrace trace = StayAt(0, HospitalPos(0), t0, t0 + 4 * 3600.0);
  const auto deliveries = detector_->Detect(trace);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].person, 0);
  EXPECT_EQ(deliveries[0].hospital, city_.hospitals[0]);
  EXPECT_FALSE(deliveries[0].flood_rescue);  // no previous position known
}

TEST_F(HospitalDetectorTest, ShortVisitIgnored) {
  const double t0 = spec_.storm.storm_end_s;
  // 90 minutes < the paper's 2-hour threshold.
  GpsTrace trace = StayAt(0, HospitalPos(0), t0, t0 + 1.5 * 3600.0);
  EXPECT_TRUE(detector_->Detect(trace).empty());
}

TEST_F(HospitalDetectorTest, FloodRescueBackCheck) {
  const util::GeoPoint flooded = FloodedPos();
  const double t0 = spec_.storm.storm_end_s - 3600.0;
  GpsTrace trace;
  // Person pings at a flooded position, then appears at a hospital for 5 h.
  trace.push_back({0, t0, flooded, 0.0, 0.0});
  const GpsTrace stay =
      StayAt(0, HospitalPos(0), t0 + 1800.0, t0 + 1800.0 + 5 * 3600.0);
  trace.insert(trace.end(), stay.begin(), stay.end());
  const auto deliveries = detector_->Detect(trace);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_TRUE(deliveries[0].flood_rescue);
  EXPECT_EQ(deliveries[0].previous_pos, flooded);
  EXPECT_EQ(HospitalDeliveryDetector::FloodRescuesOnly(deliveries).size(), 1u);
}

TEST_F(HospitalDetectorTest, DryPreviousPositionIsNotFloodRescue) {
  // Previous position before the storm: dry everywhere.
  GpsTrace trace;
  trace.push_back({0, 1000.0, city_.box.At(0.1, 0.9), 0.0, 0.0});
  const GpsTrace stay = StayAt(0, HospitalPos(1), 2000.0, 2000.0 + 4 * 3600.0);
  trace.insert(trace.end(), stay.begin(), stay.end());
  const auto deliveries = detector_->Detect(trace);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_FALSE(deliveries[0].flood_rescue);
  EXPECT_TRUE(HospitalDeliveryDetector::FloodRescuesOnly(deliveries).empty());
}

TEST_F(HospitalDetectorTest, MultiplePeopleSeparated) {
  const double t0 = spec_.storm.storm_end_s;
  GpsTrace trace = StayAt(0, HospitalPos(0), t0, t0 + 3 * 3600.0);
  const GpsTrace second = StayAt(1, HospitalPos(1), t0, t0 + 3 * 3600.0);
  trace.insert(trace.end(), second.begin(), second.end());
  const auto deliveries = detector_->Detect(trace);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NE(deliveries[0].person, deliveries[1].person);
}

TEST_F(HospitalDetectorTest, EmptyTrace) {
  EXPECT_TRUE(detector_->Detect({}).empty());
}

}  // namespace
}  // namespace mobirescue::mobility
