#include "mobility/map_matcher.hpp"

#include <gtest/gtest.h>

#include "roadnet/city_builder.hpp"

namespace mobirescue::mobility {
namespace {

class MapMatcherTest : public ::testing::Test {
 protected:
  MapMatcherTest() {
    roadnet::CityConfig config;
    config.grid_width = 8;
    config.grid_height = 8;
    city_ = roadnet::BuildCity(config);
    index_ = std::make_unique<roadnet::SpatialIndex>(city_.network, city_.box);
    matcher_ = std::make_unique<MapMatcher>(city_.network, *index_);
  }

  roadnet::City city_;
  std::unique_ptr<roadnet::SpatialIndex> index_;
  std::unique_ptr<MapMatcher> matcher_;
};

TEST_F(MapMatcherTest, MatchesOnSegmentPointsToThatSegment) {
  const roadnet::RoadSegment& seg = city_.network.segment(0);
  const util::GeoPoint mid = city_.network.SegmentMidpoint(seg.id);
  GpsTrace trace = {{0, 100.0, mid, 0.0, 5.0}};
  const auto matched = matcher_->MatchTrace(trace);
  ASSERT_EQ(matched.size(), 1u);
  // Either the segment itself or its two-way twin (identical geometry).
  const roadnet::RoadSegment& got = city_.network.segment(matched[0].segment);
  const bool same_geometry =
      (got.from == seg.from && got.to == seg.to) ||
      (got.from == seg.to && got.to == seg.from);
  EXPECT_TRUE(same_geometry);
  EXPECT_EQ(matched[0].person, 0);
  EXPECT_DOUBLE_EQ(matched[0].t, 100.0);
}

TEST_F(MapMatcherTest, DropsRecordsFarFromRoads) {
  MatchConfig config;
  config.max_match_distance_m = 50.0;
  MapMatcher strict(city_.network, *index_, config);
  // A point outside the box entirely.
  GpsTrace trace = {{0, 0.0, {30.0, -70.0}, 0.0, 0.0}};
  EXPECT_TRUE(strict.MatchTrace(trace).empty());
}

TEST_F(MapMatcherTest, TrajectoriesGroupByPerson) {
  const util::GeoPoint a = city_.network.landmark(0).pos;
  const util::GeoPoint b = city_.network.landmark(10).pos;
  GpsTrace trace = {
      {0, 0.0, a, 0.0, 5.0},  {0, 60.0, b, 0.0, 5.0},
      {1, 10.0, b, 0.0, 5.0}, {1, 70.0, a, 0.0, 5.0},
  };
  const auto matched = matcher_->MatchTrace(trace);
  const auto trajectories = matcher_->BuildTrajectories(matched);
  ASSERT_EQ(trajectories.size(), 2u);
  EXPECT_EQ(trajectories[0].person, 0);
  EXPECT_EQ(trajectories[1].person, 1);
  for (const Trajectory& t : trajectories) {
    EXPECT_EQ(t.times.size(), t.landmarks.size());
    EXPECT_FALSE(t.landmarks.empty());
  }
}

TEST_F(MapMatcherTest, ConsecutiveStationaryPingsCollapse) {
  const util::GeoPoint a = city_.network.landmark(5).pos;
  GpsTrace trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back({0, i * 100.0, a, 0.0, 0.0});
  }
  const auto matched = matcher_->MatchTrace(trace);
  const auto trajectories = matcher_->BuildTrajectories(matched);
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_EQ(trajectories[0].landmarks.size(), 1u);
}

TEST_F(MapMatcherTest, EmptyInput) {
  EXPECT_TRUE(matcher_->MatchTrace({}).empty());
  EXPECT_TRUE(matcher_->BuildTrajectories({}).empty());
}

}  // namespace
}  // namespace mobirescue::mobility
