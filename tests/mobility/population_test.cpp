#include "mobility/population.hpp"

#include <gtest/gtest.h>

namespace mobirescue::mobility {
namespace {

roadnet::City TestCity() {
  roadnet::CityConfig config;
  config.grid_width = 10;
  config.grid_height = 10;
  return roadnet::BuildCity(config);
}

TEST(PopulationTest, BuildsRequestedCount) {
  const roadnet::City city = TestCity();
  PopulationConfig config;
  config.num_people = 500;
  const auto people = BuildPopulation(city, config);
  EXPECT_EQ(people.size(), 500u);
}

TEST(PopulationTest, IdsSequentialAnchorsValid) {
  const roadnet::City city = TestCity();
  PopulationConfig config;
  config.num_people = 200;
  const auto people = BuildPopulation(city, config);
  for (std::size_t i = 0; i < people.size(); ++i) {
    EXPECT_EQ(people[i].id, static_cast<PersonId>(i));
    EXPECT_GE(people[i].home, 0);
    EXPECT_LT(static_cast<std::size_t>(people[i].home),
              city.network.num_landmarks());
    EXPECT_NE(people[i].home, people[i].work);
    EXPECT_EQ(people[i].home_region,
              city.network.landmark(people[i].home).region);
    EXPECT_GE(people[i].trip_rate, 0.5);
  }
}

TEST(PopulationTest, DowntownWeightSkewsHomes) {
  const roadnet::City city = TestCity();
  // Count downtown landmarks fraction as the null model.
  std::size_t downtown_lms = 0;
  for (const roadnet::Landmark& lm : city.network.landmarks()) {
    if (lm.region == roadnet::kDowntownRegion) ++downtown_lms;
  }
  const double base_frac =
      static_cast<double>(downtown_lms) / city.network.num_landmarks();

  PopulationConfig config;
  config.num_people = 4000;
  config.downtown_weight = 4.0;
  const auto people = BuildPopulation(city, config);
  std::size_t downtown_homes = 0;
  for (const Person& p : people) {
    if (p.home_region == roadnet::kDowntownRegion) ++downtown_homes;
  }
  const double home_frac = static_cast<double>(downtown_homes) / people.size();
  EXPECT_GT(home_frac, base_frac * 1.5);
}

TEST(PopulationTest, DeterministicBySeed) {
  const roadnet::City city = TestCity();
  PopulationConfig config;
  config.num_people = 100;
  const auto a = BuildPopulation(city, config);
  const auto b = BuildPopulation(city, config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].home, b[i].home);
    EXPECT_EQ(a[i].work, b[i].work);
  }
}

TEST(PopulationTest, RejectsNonPositiveCount) {
  const roadnet::City city = TestCity();
  PopulationConfig config;
  config.num_people = 0;
  EXPECT_THROW(BuildPopulation(city, config), std::invalid_argument);
}

}  // namespace
}  // namespace mobirescue::mobility
