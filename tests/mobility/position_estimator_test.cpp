#include "mobility/position_estimator.hpp"

#include <gtest/gtest.h>

#include "util/sim_time.hpp"

namespace mobirescue::mobility {
namespace {

const util::GeoPoint kHome{35.70, -78.90};
const util::GeoPoint kWork{35.75, -78.80};

/// Three days of a clean home/work routine for one person.
GpsTrace Routine(PersonId person) {
  GpsTrace out;
  for (int day = 0; day < 3; ++day) {
    for (int h = 0; h < 24; ++h) {
      GpsRecord r;
      r.person = person;
      r.t = day * util::kSecondsPerDay + h * util::kSecondsPerHour + 120.0;
      r.pos = (h >= 9 && h < 17) ? kWork : kHome;
      out.push_back(r);
    }
  }
  return out;
}

TEST(PositionEstimatorTest, LearnsHomeAndWorkAnchors) {
  PositionEstimator estimator(Routine(0));
  const MobilityProfile* prof = estimator.Profile(0);
  ASSERT_NE(prof, nullptr);
  EXPECT_LT(util::ApproxDistanceMeters(prof->home, kHome), 50.0);
  EXPECT_LT(util::ApproxDistanceMeters(prof->work, kWork), 50.0);
}

TEST(PositionEstimatorTest, EstimatesByHourOfDay) {
  PositionEstimator estimator(Routine(0));
  const auto at_night = estimator.Estimate(0, 2);
  const auto at_noon = estimator.Estimate(0, 12);
  ASSERT_TRUE(at_night.has_value());
  ASSERT_TRUE(at_noon.has_value());
  EXPECT_LT(util::ApproxDistanceMeters(*at_night, kHome), 50.0);
  EXPECT_LT(util::ApproxDistanceMeters(*at_noon, kWork), 50.0);
}

TEST(PositionEstimatorTest, UnknownPersonIsNullopt) {
  PositionEstimator estimator(Routine(0));
  EXPECT_FALSE(estimator.Estimate(42, 12).has_value());
}

TEST(PositionEstimatorTest, AugmentFillsMissingPeople) {
  GpsTrace history = Routine(0);
  const GpsTrace second = Routine(1);
  history.insert(history.end(), second.begin(), second.end());
  PositionEstimator estimator(history);

  // Real-time snapshot only sees person 0.
  std::vector<GpsRecord> snapshot;
  GpsRecord seen;
  seen.person = 0;
  seen.pos = kHome;
  snapshot.push_back(seen);

  const std::size_t added = estimator.AugmentSnapshot(
      &snapshot, {0, 1, 99}, 12.0 * util::kSecondsPerHour);
  EXPECT_EQ(added, 1u);  // person 1 estimated; 99 unknown; 0 already there
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[1].person, 1);
  EXPECT_LT(util::ApproxDistanceMeters(snapshot[1].pos, kWork), 50.0);
}

TEST(PositionEstimatorTest, EmptyHistory) {
  PositionEstimator estimator({});
  EXPECT_EQ(estimator.num_profiles(), 0u);
  EXPECT_FALSE(estimator.Estimate(0, 0).has_value());
}

}  // namespace
}  // namespace mobirescue::mobility
