#include "mobility/trace_generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "weather/scenario.hpp"

namespace mobirescue::mobility {
namespace {

/// Shared fixture: small city, short scenario, modest population. Trace
/// generation is the most expensive setup in the suite, so it is built
/// once.
class TraceGeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::CityConfig city_config;
    city_config.grid_width = 10;
    city_config.grid_height = 10;
    city_ = new roadnet::City(roadnet::BuildCity(city_config));
    spec_ = new weather::ScenarioSpec(weather::FlorenceScenario());
    field_ = new weather::WeatherField(city_->box, spec_->storm);
    flood_ = new weather::FloodModel(*field_, city_->terrain);
    TraceConfig config;
    config.population.num_people = 150;
    TraceGenerator generator(*city_, *field_, *flood_, *spec_, config);
    trace_ = new TraceResult(generator.Generate());
  }

  static void TearDownTestSuite() {
    delete trace_;
    delete flood_;
    delete field_;
    delete spec_;
    delete city_;
    trace_ = nullptr;
  }

  static roadnet::City* city_;
  static weather::ScenarioSpec* spec_;
  static weather::WeatherField* field_;
  static weather::FloodModel* flood_;
  static TraceResult* trace_;
};

roadnet::City* TraceGeneratorTest::city_ = nullptr;
weather::ScenarioSpec* TraceGeneratorTest::spec_ = nullptr;
weather::WeatherField* TraceGeneratorTest::field_ = nullptr;
weather::FloodModel* TraceGeneratorTest::flood_ = nullptr;
TraceResult* TraceGeneratorTest::trace_ = nullptr;

TEST_F(TraceGeneratorTest, ProducesRecordsForMostPeople) {
  std::set<PersonId> people;
  for (const GpsRecord& r : trace_->records) people.insert(r.person);
  EXPECT_GE(people.size(), 140u);
  EXPECT_GT(trace_->records.size(), 10000u);
}

TEST_F(TraceGeneratorTest, RecordsSortedByPersonThenTime) {
  for (std::size_t i = 1; i < trace_->records.size(); ++i) {
    const GpsRecord& a = trace_->records[i - 1];
    const GpsRecord& b = trace_->records[i];
    ASSERT_TRUE(a.person < b.person ||
                (a.person == b.person && a.t <= b.t));
  }
}

TEST_F(TraceGeneratorTest, TimestampsInsideWindow) {
  const double window = spec_->window_days * util::kSecondsPerDay;
  for (const GpsRecord& r : trace_->records) {
    ASSERT_GE(r.t, 0.0);
    ASSERT_LT(r.t, window + util::kSecondsPerDay);
  }
}

TEST_F(TraceGeneratorTest, RescuesAppearDuringOrAfterStorm) {
  ASSERT_FALSE(trace_->rescues.empty());
  for (const RescueEvent& ev : trace_->rescues) {
    EXPECT_GE(ev.request_time, spec_->storm.storm_begin_s);
    EXPECT_NE(ev.request_segment, roadnet::kInvalidSegment);
    EXPECT_GE(ev.region, 1);
    EXPECT_LE(ev.region, roadnet::kNumRegions);
  }
}

TEST_F(TraceGeneratorTest, RescuesSortedByRequestTime) {
  for (std::size_t i = 1; i < trace_->rescues.size(); ++i) {
    EXPECT_LE(trace_->rescues[i - 1].request_time,
              trace_->rescues[i].request_time);
  }
}

TEST_F(TraceGeneratorTest, RescuePositionsAreFlooded) {
  // A trapped person must have been in meaningfully deep water, below the
  // pre-evacuation cutoff.
  TraceConfig defaults;
  for (const RescueEvent& ev : trace_->rescues) {
    const double depth = flood_->DepthAt(ev.request_pos, ev.request_time);
    EXPECT_GE(depth, 0.8 * defaults.trap_depth_m);
    EXPECT_LT(depth, 1.5 * defaults.evacuated_depth_m);
  }
}

TEST_F(TraceGeneratorTest, DeliveredRescuesReferenceHospitals) {
  int delivered = 0;
  for (const RescueEvent& ev : trace_->rescues) {
    if (!ev.delivered) continue;
    ++delivered;
    EXPECT_GT(ev.delivery_time, ev.request_time);
    EXPECT_NE(std::find(city_->hospitals.begin(), city_->hospitals.end(),
                        ev.hospital),
              city_->hospitals.end());
  }
  // Most trapped people are delivered in the historical trace (default 85%).
  EXPECT_GT(delivered, static_cast<int>(trace_->rescues.size() / 2));
}

TEST_F(TraceGeneratorTest, AtMostOneRequestPerPersonPerDay) {
  std::set<std::pair<PersonId, int>> seen;
  for (const RescueEvent& ev : trace_->rescues) {
    const auto key =
        std::make_pair(ev.person, util::DayIndex(ev.request_time));
    EXPECT_TRUE(seen.insert(key).second)
        << "person " << ev.person << " trapped twice on day " << key.second;
  }
}

TEST_F(TraceGeneratorTest, MovementCollapsesDuringStorm) {
  // Count moving records (speed > 2 m/s) per day: the storm days must show
  // far less driving than the pre-disaster days (paper Fig. 5).
  std::vector<int> moving(spec_->window_days, 0);
  for (const GpsRecord& r : trace_->records) {
    if (r.speed_mps > 2.0) {
      const int day = util::DayIndex(r.t);
      if (day < spec_->window_days) ++moving[day];
    }
  }
  const double before = (moving[0] + moving[1] + moving[2]) / 3.0;
  const int storm_peak_day = util::DayIndex(spec_->storm.storm_peak_s);
  EXPECT_LT(moving[storm_peak_day], before * 0.5);
}

TEST_F(TraceGeneratorTest, SeverityZeroBeforeStorm) {
  TraceConfig config;
  config.population.num_people = 5;
  TraceGenerator generator(*city_, *field_, *flood_, *spec_, config);
  EXPECT_LT(generator.SeverityAt(city_->box.Center(), 0.0), 0.05);
  EXPECT_GT(generator.SeverityAt(city_->box.At(0.9, 0.1),
                                 spec_->storm.storm_peak_s),
            0.3);
}

TEST_F(TraceGeneratorTest, DeterministicForSameConfig) {
  TraceConfig config;
  config.population.num_people = 30;
  TraceGenerator g1(*city_, *field_, *flood_, *spec_, config);
  TraceGenerator g2(*city_, *field_, *flood_, *spec_, config);
  const TraceResult a = g1.Generate();
  const TraceResult b = g2.Generate();
  ASSERT_EQ(a.records.size(), b.records.size());
  ASSERT_EQ(a.rescues.size(), b.rescues.size());
  for (std::size_t i = 0; i < a.records.size(); i += 97) {
    EXPECT_EQ(a.records[i].t, b.records[i].t);
    EXPECT_EQ(a.records[i].pos, b.records[i].pos);
  }
}

}  // namespace
}  // namespace mobirescue::mobility
