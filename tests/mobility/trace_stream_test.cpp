// Streaming trace generation (DESIGN.md §17): per-person chunks must be
// bit-identical to the whole-trace Generate() at paper scale (8,590 people,
// the X-Mode cohort size), independent of generation order; and trips that
// cross a closure epoch must truncate cleanly instead of emitting the
// pre-fix inf/NaN timestamps (the EmitTrip division hazard).
#include "mobility/trace_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "weather/scenario.hpp"

namespace mobirescue::mobility {
namespace {

bool SameRecord(const GpsRecord& a, const GpsRecord& b) {
  return a.person == b.person && a.t == b.t && a.pos.lat == b.pos.lat &&
         a.pos.lon == b.pos.lon && a.altitude_m == b.altitude_m &&
         a.speed_mps == b.speed_mps;
}

bool SameRescue(const RescueEvent& a, const RescueEvent& b) {
  return a.person == b.person && a.request_time == b.request_time &&
         a.request_pos.lat == b.request_pos.lat &&
         a.request_pos.lon == b.request_pos.lon &&
         a.request_segment == b.request_segment && a.region == b.region &&
         a.delivered == b.delivered && a.delivery_time == b.delivery_time &&
         a.hospital == b.hospital;
}

/// Shared fixture at paper scale. The trace is generated once (the whole
/// suite's dominant cost) through the classic whole-trace API.
class TraceStreamTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::CityConfig city_config;
    city_config.grid_width = 10;
    city_config.grid_height = 10;
    city_ = new roadnet::City(roadnet::BuildCity(city_config));
    spec_ = new weather::ScenarioSpec(weather::FlorenceScenario());
    field_ = new weather::WeatherField(city_->box, spec_->storm);
    flood_ = new weather::FloodModel(*field_, city_->terrain);
    config_ = new TraceConfig();
    config_->population.num_people = 8590;  // the paper's cohort
    TraceGenerator generator(*city_, *field_, *flood_, *spec_, *config_);
    trace_ = new TraceResult(generator.Generate());
  }

  static void TearDownTestSuite() {
    delete trace_;
    delete config_;
    delete flood_;
    delete field_;
    delete spec_;
    delete city_;
    trace_ = nullptr;
  }

  /// The [begin, end) slice of the whole trace belonging to `person`
  /// (records are (person, time)-sorted).
  static std::pair<std::size_t, std::size_t> PersonSlice(PersonId person) {
    const auto lo = std::lower_bound(
        trace_->records.begin(), trace_->records.end(), person,
        [](const GpsRecord& r, PersonId p) { return r.person < p; });
    auto hi = lo;
    while (hi != trace_->records.end() && hi->person == person) ++hi;
    return {static_cast<std::size_t>(lo - trace_->records.begin()),
            static_cast<std::size_t>(hi - trace_->records.begin())};
  }

  static roadnet::City* city_;
  static weather::ScenarioSpec* spec_;
  static weather::WeatherField* field_;
  static weather::FloodModel* flood_;
  static TraceConfig* config_;
  static TraceResult* trace_;
};

roadnet::City* TraceStreamTest::city_ = nullptr;
weather::ScenarioSpec* TraceStreamTest::spec_ = nullptr;
weather::WeatherField* TraceStreamTest::field_ = nullptr;
weather::FloodModel* TraceStreamTest::flood_ = nullptr;
TraceConfig* TraceStreamTest::config_ = nullptr;
TraceResult* TraceStreamTest::trace_ = nullptr;

TEST_F(TraceStreamTest, StreamedChunksConcatenateToGenerateBitIdentically) {
  TraceGenerator generator(*city_, *field_, *flood_, *spec_, *config_);
  std::size_t cursor = 0;
  std::size_t rescues_seen = 0;
  std::size_t max_chunk = 0;
  PersonId prev = kInvalidPerson;
  const std::vector<Person> population =
      generator.GenerateStreaming([&](PersonTrace&& chunk) {
        ASSERT_GT(chunk.person.id, prev);  // population order, one pass
        prev = chunk.person.id;
        max_chunk = std::max(max_chunk, chunk.records.size());
        for (const GpsRecord& r : chunk.records) {
          ASSERT_LT(cursor, trace_->records.size());
          ASSERT_TRUE(SameRecord(trace_->records[cursor], r))
              << "record " << cursor << " of person " << chunk.person.id;
          ++cursor;
        }
        rescues_seen += chunk.rescues.size();
      });
  EXPECT_EQ(cursor, trace_->records.size());
  EXPECT_EQ(rescues_seen, trace_->rescues.size());
  EXPECT_EQ(population.size(), trace_->population.size());
  // The point of streaming: no chunk is remotely the whole trace.
  EXPECT_LT(max_chunk, trace_->records.size() / 100);
}

TEST_F(TraceStreamTest, PersonChunksAreOrderIndependent) {
  // A fresh generator, visiting a sample of people in *reverse* order,
  // must reproduce each person's slice of the whole trace bit-for-bit:
  // chunk content depends only on (seed, person), never on who was
  // generated before.
  TraceGenerator generator(*city_, *field_, *flood_, *spec_, *config_);
  const std::vector<Person>& population = trace_->population;
  std::size_t sampled = 0;
  for (std::size_t i = population.size(); i-- > 0;) {
    if (i % 409 != 0) continue;
    ++sampled;
    const PersonTrace chunk = generator.GeneratePerson(population[i]);
    const auto [lo, hi] = PersonSlice(population[i].id);
    ASSERT_EQ(chunk.records.size(), hi - lo) << "person " << population[i].id;
    for (std::size_t k = 0; k < chunk.records.size(); ++k) {
      ASSERT_TRUE(SameRecord(chunk.records[k], trace_->records[lo + k]))
          << "person " << population[i].id << " record " << k;
    }
    for (const RescueEvent& ev : chunk.rescues) {
      const auto match = std::find_if(
          trace_->rescues.begin(), trace_->rescues.end(),
          [&](const RescueEvent& other) { return SameRescue(ev, other); });
      ASSERT_NE(match, trace_->rescues.end())
          << "person " << population[i].id << " rescue missing";
    }
  }
  ASSERT_GT(sampled, 10u);
}

TEST_F(TraceStreamTest, AllRecordsFiniteAndPerPersonTimeOrdered) {
  // The pre-fix EmitTrip divided by a zero speed factor when a trip hit a
  // closed segment, poisoning every later timestamp of the trip with
  // inf/NaN. At paper scale through a hurricane, every record must stay
  // finite and each person's records non-decreasing in time.
  for (std::size_t i = 0; i < trace_->records.size(); ++i) {
    const GpsRecord& r = trace_->records[i];
    ASSERT_TRUE(std::isfinite(r.t) && std::isfinite(r.pos.lat) &&
                std::isfinite(r.pos.lon) && std::isfinite(r.altitude_m) &&
                std::isfinite(r.speed_mps))
        << "record " << i << " person " << r.person;
    if (i > 0 && trace_->records[i - 1].person == r.person) {
      ASSERT_LE(trace_->records[i - 1].t, r.t) << "record " << i;
    }
  }
}

TEST_F(TraceStreamTest, ClosureEpochTripsTruncateCleanly) {
  // Drive EmitTrip directly across storm-onset hour boundaries until a
  // trip meets a segment that closed after its route was planned. The trip
  // must truncate at the closure's entry landmark with finite, ordered
  // samples — and such a trip must exist (otherwise the guard is dead code
  // and this test is vacuous).
  TraceConfig small = *config_;
  small.population.num_people = 2;
  TraceGenerator gen(*city_, *field_, *flood_, *spec_, small);
  util::Rng rng(4242);
  const int onset_hour = util::HourIndex(spec_->storm.storm_begin_s);
  const int peak_hour = util::HourIndex(spec_->storm.storm_peak_s);
  const std::size_t num_landmarks = city_->network.num_landmarks();
  bool truncated_seen = false;
  for (int attempt = 0; attempt < 8000; ++attempt) {
    const auto from = static_cast<roadnet::LandmarkId>(rng.Index(num_landmarks));
    const auto to = static_cast<roadnet::LandmarkId>(rng.Index(num_landmarks));
    if (from == to) continue;
    const int hour =
        onset_hour + static_cast<int>(rng.Index(
                         static_cast<std::size_t>(peak_hour - onset_hour + 12)));
    // Depart close to the hour boundary so most of the trip runs under the
    // next hour's conditions.
    const util::SimTime depart =
        hour * util::kSecondsPerHour + rng.Uniform(3000.0, 3550.0);
    GpsTrace out;
    const TraceGenerator::TripOutcome tr =
        gen.EmitTrip(rng, 0, from, to, depart, out);
    ASSERT_TRUE(std::isfinite(tr.arrival));
    ASSERT_GE(tr.arrival, depart);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(std::isfinite(out[i].t) && std::isfinite(out[i].pos.lat) &&
                  std::isfinite(out[i].pos.lon) &&
                  std::isfinite(out[i].speed_mps))
          << "attempt " << attempt << " sample " << i;
      if (i > 0) {
        ASSERT_LE(out[i - 1].t, out[i].t);
      }
    }
    if (!out.empty()) {
      ASSERT_EQ(out.back().t, tr.arrival);
      if (tr.reached != to) {
        truncated_seen = true;  // flooded out mid-trip, cleanly stranded
        ASSERT_NE(tr.reached, roadnet::kInvalidLandmark);
      }
    }
  }
  EXPECT_TRUE(truncated_seen)
      << "no trip met a mid-trip closure; the truncation guard is untested";
}

}  // namespace
}  // namespace mobirescue::mobility
