#include "mobility/trip_extractor.hpp"

#include <gtest/gtest.h>

#include "util/sim_time.hpp"

namespace mobirescue::mobility {
namespace {

const util::GeoPoint kA{35.70, -78.90};
const util::GeoPoint kB{35.75, -78.80};  // ~11 km away

GpsRecord Rec(PersonId p, double t, util::GeoPoint pos) {
  GpsRecord r;
  r.person = p;
  r.t = t;
  r.pos = pos;
  return r;
}

/// Stay at A for an hour, move, stay at B for an hour.
GpsTrace OneTrip(PersonId p, double start = 0.0) {
  GpsTrace out;
  for (int i = 0; i < 6; ++i) out.push_back(Rec(p, start + i * 600.0, kA));
  // Move fixes (fast, no stay).
  out.push_back(Rec(p, start + 3800.0, util::Lerp(kA, kB, 0.5)));
  for (int i = 0; i < 6; ++i) {
    out.push_back(Rec(p, start + 4000.0 + i * 600.0, kB));
  }
  return out;
}

TEST(TripExtractorTest, DetectsSimpleTrip) {
  const auto result = ExtractTrips(OneTrip(0));
  ASSERT_EQ(result.stays.size(), 2u);
  ASSERT_EQ(result.trips.size(), 1u);
  const Trip& trip = result.trips[0];
  EXPECT_EQ(trip.person, 0);
  EXPECT_LT(util::ApproxDistanceMeters(trip.origin, kA), 300.0);
  EXPECT_LT(util::ApproxDistanceMeters(trip.destination, kB), 300.0);
  EXPECT_GT(trip.DurationS(), 0.0);
  EXPECT_GT(trip.StraightLineM(), 5000.0);
}

TEST(TripExtractorTest, ShortJitterIsNotATrip) {
  GpsTrace trace;
  // Two "stays" 100 m apart: below min_trip_m.
  const util::GeoPoint near{kA.lat + 0.0009, kA.lon};
  for (int i = 0; i < 6; ++i) trace.push_back(Rec(0, i * 600.0, kA));
  for (int i = 0; i < 6; ++i) {
    trace.push_back(Rec(0, 7200.0 + i * 600.0, near));
  }
  const auto result = ExtractTrips(trace);
  EXPECT_TRUE(result.trips.empty());
}

TEST(TripExtractorTest, BriefPauseDoesNotSplitTrip) {
  TripExtractorConfig config;
  config.min_stay_s = 1800.0;
  GpsTrace trace = OneTrip(0);
  // Insert a 5-minute pause mid-route: too short to be a stay.
  trace.push_back(Rec(0, 3850.0, util::Lerp(kA, kB, 0.55)));
  std::sort(trace.begin(), trace.end(),
            [](const GpsRecord& a, const GpsRecord& b) { return a.t < b.t; });
  const auto result = ExtractTrips(trace, config);
  EXPECT_EQ(result.trips.size(), 1u);
}

TEST(TripExtractorTest, MultiplePeopleIndependent) {
  GpsTrace trace = OneTrip(0);
  const GpsTrace second = OneTrip(1, 1000.0);
  trace.insert(trace.end(), second.begin(), second.end());
  const auto result = ExtractTrips(trace);
  ASSERT_EQ(result.trips.size(), 2u);
  EXPECT_EQ(result.trips[0].person, 0);
  EXPECT_EQ(result.trips[1].person, 1);
}

TEST(TripExtractorTest, TripsPerDayBuckets) {
  std::vector<Trip> trips(3);
  trips[0].depart = 0.5 * util::kSecondsPerDay;
  trips[1].depart = 1.2 * util::kSecondsPerDay;
  trips[2].depart = 1.8 * util::kSecondsPerDay;
  const auto per_day = TripsPerDay(trips, 3);
  EXPECT_EQ(per_day, (std::vector<int>{1, 2, 0}));
}

TEST(TripExtractorTest, EmptyTrace) {
  const auto result = ExtractTrips({});
  EXPECT_TRUE(result.trips.empty());
  EXPECT_TRUE(result.stays.empty());
}

}  // namespace
}  // namespace mobirescue::mobility
