#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mobirescue::obs {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

// --- Prometheus text -------------------------------------------------------

TEST(PrometheusTextTest, CounterAndGaugeLines) {
  Registry reg;
  Counter c(reg, "expo_events_total", "Total events.");
  Gauge g(reg, "expo_depth", "Queue depth.");
  c.Increment(12);
  g.Set(3.5);
  const std::string text = PrometheusText(reg);
  EXPECT_NE(text.find("# HELP expo_events_total Total events.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE expo_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("expo_events_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE expo_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("expo_depth 3.5\n"), std::string::npos);
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulative) {
  Registry reg;
  Histogram h(reg, "expo_ms", "Latency.", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(5.0);
  h.Observe(50.0);
  const std::string text = PrometheusText(reg);
  EXPECT_NE(text.find("# TYPE expo_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("expo_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("expo_ms_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("expo_ms_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("expo_ms_sum 60.5\n"), std::string::npos);
  EXPECT_NE(text.find("expo_ms_count 4\n"), std::string::npos);
}

TEST(PrometheusTextTest, HelpEscapesNewlineAndBackslash) {
  Registry reg;
  Counter c(reg, "expo_escaped_total", "line1\nline2 \\ backslash");
  const std::string text = PrometheusText(reg);
  EXPECT_NE(text.find("line1\\nline2 \\\\ backslash"), std::string::npos);
}

TEST(PrometheusTextTest, FileRoundTrip) {
  Registry reg;
  Counter c(reg, "expo_file_total", "x");
  c.Increment(3);
  const std::string path = TempPath("expo_prom.txt");
  WritePrometheusTextFile(path, reg);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("expo_file_total 3\n"), std::string::npos);
}

// --- Metrics JSON ----------------------------------------------------------

TEST(MetricsJsonTest, WriterOutputValidates) {
  Registry reg;
  Counter c(reg, "mj_events_total", "Events.");
  Gauge g(reg, "mj_depth", "Depth.");
  Histogram h(reg, "mj_ms", "Latency.", {1.0, 10.0});
  c.Increment(5);
  g.Set(-2.5);
  h.Observe(0.1);
  h.Observe(99.0);
  const std::string path = TempPath("expo_metrics.json");
  WriteMetricsJsonFile(path, "unit-test", reg);
  std::string error;
  EXPECT_TRUE(ValidateMetricsJsonFile(path, &error)) << error;
}

TEST(MetricsJsonTest, EmptyRegistryStillValidates) {
  Registry reg;
  const std::string path = TempPath("expo_metrics_empty.json");
  WriteMetricsJsonFile(path, "empty", reg);
  std::string error;
  EXPECT_TRUE(ValidateMetricsJsonFile(path, &error)) << error;
}

TEST(MetricsJsonTest, ValidatorRejectsBadDocuments) {
  const std::string path = TempPath("expo_metrics_bad.json");
  std::string error;

  WriteText(path, "{\"label\": \"x\", \"metrics\": []}");
  EXPECT_FALSE(ValidateMetricsJsonFile(path, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);

  WriteText(path,
            "{\"schema\": \"mobirescue-metrics-v1\", \"label\": \"x\", "
            "\"metrics\": [{\"name\": \"a\", \"kind\": \"counter\"}]}");
  EXPECT_FALSE(ValidateMetricsJsonFile(path, &error));
  EXPECT_NE(error.find("value"), std::string::npos);

  WriteText(path,
            "{\"schema\": \"mobirescue-metrics-v1\", \"label\": \"x\", "
            "\"metrics\": [{\"name\": \"a\", \"kind\": \"histogram\", "
            "\"count\": 1, \"sum\": 2.0, \"buckets\": "
            "[{\"le\": \"huge\", \"count\": 1}]}]}");
  EXPECT_FALSE(ValidateMetricsJsonFile(path, &error));
  EXPECT_NE(error.find("+Inf"), std::string::npos);

  EXPECT_FALSE(ValidateMetricsJsonFile(TempPath("no_such_file.json"),
                                       &error));
}

// --- Chrome trace ----------------------------------------------------------

TEST(ChromeTraceTest, WriterOutputValidates) {
  TraceRecorder rec;
  rec.Enable();
  { ScopedSpan a("phase.alpha", rec); }
  { ScopedSpan b("phase.beta", rec); }
  rec.Disable();
  const std::string path = TempPath("expo_trace.json");
  WriteChromeTraceFile(path, rec);
  std::string error;
  EXPECT_TRUE(ValidateChromeTraceFile(path, &error)) << error;

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"phase.alpha\""), std::string::npos);
  EXPECT_NE(text.find("\"phase.beta\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(ChromeTraceTest, MultiThreadTraceValidates) {
  TraceRecorder rec;
  rec.Enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < 10; ++i) {
        ScopedSpan span("mt.work", rec);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::string path = TempPath("expo_trace_mt.json");
  WriteChromeTraceFile(path, rec);
  std::string error;
  EXPECT_TRUE(ValidateChromeTraceFile(path, &error)) << error;
}

TEST(ChromeTraceTest, ValidatorRejectsBadTraces) {
  const std::string path = TempPath("expo_trace_bad.json");
  std::string error;

  WriteText(path, "{\"other\": 1}");
  EXPECT_FALSE(ValidateChromeTraceFile(path, &error));
  EXPECT_NE(error.find("traceEvents"), std::string::npos);

  // An empty trace is a failed capture, not a valid artifact.
  WriteText(path, "{\"traceEvents\": []}");
  EXPECT_FALSE(ValidateChromeTraceFile(path, &error));
  EXPECT_NE(error.find("empty"), std::string::npos);

  WriteText(path,
            "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", "
            "\"ts\": 1.0, \"dur\": 2.0}]}");
  EXPECT_FALSE(ValidateChromeTraceFile(path, &error));
  EXPECT_NE(error.find("pid"), std::string::npos);

  WriteText(path,
            "{\"traceEvents\": [{\"name\": \"\", \"ph\": \"X\", "
            "\"ts\": 1.0, \"dur\": 2.0, \"pid\": 1, \"tid\": 1}]}");
  EXPECT_FALSE(ValidateChromeTraceFile(path, &error));
  EXPECT_NE(error.find("name"), std::string::npos);

  WriteText(path,
            "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"Q\"}]}");
  EXPECT_FALSE(ValidateChromeTraceFile(path, &error));
  EXPECT_NE(error.find("phase"), std::string::npos);
}

TEST(ChromeTraceTest, ToleratesUnknownFieldsAndNesting) {
  const std::string path = TempPath("expo_trace_extra.json");
  WriteText(path,
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["
            "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": 1, \"args\": {\"name\": \"main\", \"nested\": "
            "{\"deep\": [1, 2, null, true]}}},"
            "{\"name\": \"a\", \"ph\": \"X\", \"ts\": 0.0, \"dur\": 0.0, "
            "\"pid\": 1, \"tid\": 1, \"cat\": \"obs\"}]}");
  std::string error;
  EXPECT_TRUE(ValidateChromeTraceFile(path, &error)) << error;
}

}  // namespace
}  // namespace mobirescue::obs
