#include "obs/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mobirescue::obs {
namespace {

// Local registries keep these tests independent of instruments registered
// by production code in the same process.

HealthRule ObservedRule(std::string name, std::string key, HealthCmp cmp,
                        double threshold,
                        HealthAction action = HealthAction::kObserve) {
  HealthRule rule;
  rule.name = std::move(name);
  rule.selector = std::move(key);
  rule.observed = true;
  rule.cmp = cmp;
  rule.threshold = threshold;
  rule.action = action;
  return rule;
}

TEST(HealthEngineTest, ObservedValueRuleTripsPerComparison) {
  Registry registry;
  HealthEngine engine(
      {ObservedRule("errors", "errors", HealthCmp::kGreaterThan, 0.0)},
      registry);
  engine.Observe("errors", 0.0);
  EXPECT_TRUE(engine.Evaluate().healthy);
  engine.Observe("errors", 1.0);
  const HealthVerdict& v = engine.Evaluate();
  EXPECT_FALSE(v.healthy);
  EXPECT_TRUE(v.Tripped("errors"));
  EXPECT_TRUE(v.degrade_tripped.empty());  // kObserve never escalates
  EXPECT_EQ(engine.evaluations(), 2u);
  EXPECT_EQ(engine.trips(), 1u);
}

TEST(HealthEngineTest, AbsentObservedKeySamplesZero) {
  Registry registry;
  HealthEngine engine(
      {ObservedRule("lag", "never_fed", HealthCmp::kGreaterOrEqual, 0.0)},
      registry);
  // 0 >= 0 trips: the rule sees 0, not a missing-sample error.
  EXPECT_TRUE(engine.Evaluate().Tripped("lag"));
}

TEST(HealthEngineTest, NonFiniteSampleFailsClosed) {
  Registry registry;
  // The comparison alone would never trip (NaN < 0 is false): fail-closed
  // must trip anyway.
  HealthEngine engine(
      {ObservedRule("poisoned", "q", HealthCmp::kLessThan, 0.0)}, registry);
  engine.Observe("q", std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(engine.Evaluate().healthy);
  engine.Observe("q", std::numeric_limits<double>::infinity());
  EXPECT_FALSE(engine.Evaluate().healthy);
  engine.Observe("q", 1.0);
  EXPECT_TRUE(engine.Evaluate().healthy);
}

TEST(HealthEngineTest, RegistryRuleReadsCounterAndAbsentReadsZero) {
  Registry registry;
  HealthRule rule;
  rule.name = "drops";
  rule.selector = "test_drops_total";
  rule.cmp = HealthCmp::kGreaterThan;
  rule.threshold = 2.0;
  rule.action = HealthAction::kDegrade;
  HealthEngine engine({rule}, registry);

  EXPECT_TRUE(engine.Evaluate().healthy);  // instrument not yet live: 0
  Counter drops(registry, "test_drops_total", "Drops.");
  drops.Increment(3);
  const HealthVerdict& v = engine.Evaluate();
  EXPECT_FALSE(v.healthy);
  ASSERT_EQ(v.degrade_tripped.size(), 1u);
  EXPECT_EQ(v.degrade_tripped[0], "drops");
}

TEST(HealthEngineTest, DeltaRuleSeesMovementNotLevel) {
  Registry registry;
  Counter ticks(registry, "test_ticks_total", "Ticks.");
  ticks.Increment(1000);  // large level must not matter
  HealthRule rule;
  rule.name = "tick-rate";
  rule.selector = "test_ticks_total";
  rule.signal = HealthSignal::kDelta;
  rule.window_ticks = 2;
  rule.cmp = HealthCmp::kGreaterThan;
  rule.threshold = 5.0;
  HealthEngine engine({rule}, registry);

  EXPECT_TRUE(engine.Evaluate().healthy);  // window of one sample: delta 0
  ticks.Increment(4);
  EXPECT_TRUE(engine.Evaluate().healthy);  // +4 over the window
  ticks.Increment(4);
  EXPECT_FALSE(engine.Evaluate().healthy);  // +8 over two evaluations
}

TEST(HealthEngineTest, BurnRateDividesPerEvaluationDeltaByBudget) {
  Registry registry;
  Counter errors(registry, "test_errors_total", "Errors.");
  HealthRule rule;
  rule.name = "error-burn";
  rule.selector = "test_errors_total";
  rule.signal = HealthSignal::kBurnRate;
  rule.window_ticks = 4;
  rule.burn_budget = 2.0;  // 2 errors per evaluation budgeted
  rule.cmp = HealthCmp::kGreaterThan;
  rule.threshold = 1.0;  // trips above 1x budget
  HealthEngine engine({rule}, registry);

  engine.Evaluate();  // seed the window
  errors.Increment(2);
  EXPECT_TRUE(engine.Evaluate().healthy);  // 2/eval = exactly 1x budget
  errors.Increment(6);
  EXPECT_FALSE(engine.Evaluate().healthy);  // 4/eval = 2x budget
}

TEST(HealthEngineTest, QuantileRuleReadsHistogram) {
  Registry registry;
  Histogram latency(registry, "test_latency_ms", "Latency.",
                    {1.0, 10.0, 100.0});
  for (int i = 0; i < 99; ++i) latency.Observe(0.5);
  latency.Observe(50.0);
  HealthRule rule;
  rule.name = "p999";
  rule.selector = "test_latency_ms";
  rule.signal = HealthSignal::kQuantile;
  rule.quantile = 0.999;
  rule.cmp = HealthCmp::kGreaterThan;
  rule.threshold = 10.0;
  HealthEngine engine({rule}, registry);
  // The p99.9 lands in the (10, 100] bucket: above the 10 ms threshold.
  EXPECT_FALSE(engine.Evaluate().healthy);
}

TEST(HealthEngineTest, GaugeTracksVerdict) {
  Registry registry;
  HealthEngine engine(
      {ObservedRule("errors", "errors", HealthCmp::kGreaterThan, 0.0)},
      registry, "test_healthy_gauge",
      "1 when the last evaluation passed.");
  // The verdict gauge registers in the GLOBAL registry (it is an exported
  // service-health signal, whatever registry the rules read from).
  SnapshotDelta global(Registry::Global());
  EXPECT_EQ(global.Read("test_healthy_gauge"), 1.0);  // healthy until told
  engine.Observe("errors", 1.0);
  engine.Evaluate();
  EXPECT_EQ(global.Read("test_healthy_gauge"), 0.0);
  engine.Observe("errors", 0.0);
  engine.Evaluate();
  EXPECT_EQ(global.Read("test_healthy_gauge"), 1.0);
}

TEST(HealthEngineTest, RuleOrderIsPreservedInVerdicts) {
  Registry registry;
  HealthEngine engine(
      {ObservedRule("a", "a", HealthCmp::kGreaterThan, 0.0,
                    HealthAction::kDegrade),
       ObservedRule("b", "b", HealthCmp::kGreaterThan, 0.0),
       ObservedRule("c", "c", HealthCmp::kGreaterThan, 0.0,
                    HealthAction::kDegrade)},
      registry);
  engine.Observe("a", 1.0);
  engine.Observe("b", 1.0);
  engine.Observe("c", 1.0);
  const HealthVerdict& v = engine.Evaluate();
  ASSERT_EQ(v.tripped.size(), 3u);
  EXPECT_EQ(v.tripped[0], "a");
  EXPECT_EQ(v.tripped[2], "c");
  ASSERT_EQ(v.degrade_tripped.size(), 2u);
  EXPECT_EQ(v.degrade_tripped[0], "a");
  EXPECT_EQ(v.degrade_tripped[1], "c");
}

}  // namespace
}  // namespace mobirescue::obs
