#include "obs/incident.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace mobirescue::obs {
namespace {

std::string TempDir() { return std::string(::testing::TempDir()); }

TEST(IncidentWriterTest, DisabledWriterIsANoOp) {
  Registry registry;
  FlightRecorder flight;
  TraceRecorder trace;
  IncidentWriter writer({}, registry, flight, trace);  // empty dir
  EXPECT_FALSE(writer.enabled());
  EXPECT_EQ(writer.Dump("anything"), "");
  EXPECT_EQ(writer.dumps(), 0u);
}

TEST(IncidentWriterTest, BundleRoundTripsThroughItsValidator) {
  Registry registry;
  Counter errors(registry, "incident_test_errors_total", "Errors.");
  FlightRecorder flight;
  TraceRecorder trace;
  flight.Emit(Severity::kWarn, "serve", "quarantine", "person=3");
  flight.Emit(Severity::kError, "serve", "kill", "tick=97");
  errors.Increment(2);

  IncidentConfig config;
  config.dir = TempDir();
  config.label = "unit";
  IncidentWriter writer(config, registry, flight, trace);
  const std::string path = writer.Dump("unit-test");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(writer.dumps(), 1u);

  std::string error;
  EXPECT_TRUE(ValidateIncidentJsonFile(path, &error)) << error;

  std::vector<std::string> kinds;
  ASSERT_TRUE(ReadIncidentEventKinds(path, &kinds, &error)) << error;
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], "quarantine");
  EXPECT_EQ(kinds[1], "kill");
}

TEST(IncidentWriterTest, MetricDeltasRebaseBetweenDumps) {
  Registry registry;
  Counter errors(registry, "incident_test_rebase_total", "Errors.");
  FlightRecorder flight;
  TraceRecorder trace;
  IncidentConfig config;
  config.dir = TempDir();
  config.chrome_trace = false;
  IncidentWriter writer(config, registry, flight, trace);

  errors.Increment(5);
  flight.Emit(Severity::kInfo, "serve", "tick_start");
  const std::string first = writer.Dump("first");
  errors.Increment(2);
  const std::string second = writer.Dump("second");

  // The first bundle carries the +5 movement, the second only the +2
  // since the first — the baseline rebases at each dump.
  auto read_delta = [](const std::string& path) {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::string needle = "\"incident_test_rebase_total\"";
    const std::size_t at = text.find(needle);
    EXPECT_NE(at, std::string::npos);
    const std::size_t delta_at = text.find("\"delta\":", at);
    EXPECT_NE(delta_at, std::string::npos);
    return std::stod(text.substr(delta_at + 8));
  };
  EXPECT_EQ(read_delta(first), 5.0);
  EXPECT_EQ(read_delta(second), 2.0);
}

TEST(IncidentWriterTest, EventWindowCapsTheTimeline) {
  Registry registry;
  FlightRecorder flight;
  TraceRecorder trace;
  for (int i = 0; i < 50; ++i) {
    flight.Emit(Severity::kInfo, "sim", "condition_epoch",
                "hour=" + std::to_string(i));
  }
  IncidentConfig config;
  config.dir = TempDir();
  config.event_window = 8;
  config.chrome_trace = false;
  IncidentWriter writer(config, registry, flight, trace);
  const std::string path = writer.Dump("window");
  std::string error;
  std::vector<std::string> kinds;
  ASSERT_TRUE(ReadIncidentEventKinds(path, &kinds, &error)) << error;
  EXPECT_EQ(kinds.size(), 8u);  // the most recent window only
}

TEST(IncidentWriterTest, ChromeTraceCompanionValidates) {
  Registry registry;
  FlightRecorder flight;
  TraceRecorder trace;
  trace.Enable();
  { ScopedSpan span("tick", trace); }
  trace.Disable();
  flight.Emit(Severity::kWarn, "serve", "fallback_enter", "reason=test");

  IncidentConfig config;
  config.dir = TempDir();
  IncidentWriter writer(config, registry, flight, trace);
  const std::string path = writer.Dump("trace-view");
  ASSERT_FALSE(path.empty());
  // The companion replaces the bundle's .json suffix with .trace.json.
  const std::string trace_path =
      path.substr(0, path.size() - 5) + ".trace.json";
  std::string error;
  // The companion is standard Chrome trace_event JSON: spans as complete
  // events, flight events as instants — the repo's own validator accepts
  // it, so Perfetto will too.
  EXPECT_TRUE(ValidateChromeTraceFile(trace_path, &error)) << error;
}

TEST(IncidentValidatorTest, RejectsStructurallyBrokenBundles) {
  const std::string path =
      TempDir() + "incident_test_broken_bundle.json";
  {
    std::ofstream out(path);
    out << "{\"schema\": \"mobirescue-incident-v1\", \"label\": \"x\", "
           "\"trigger\": \"t\", \"sequence\": 1, \"events_dropped\": 0, "
           "\"spans_retained\": 0, \"events\": [{\"seq\": 1, \"ts_us\": 0, "
           "\"severity\": \"catastrophic\", \"component\": \"serve\", "
           "\"kind\": \"kill\", \"attrs\": \"\"}], \"metrics\": []}";
  }
  std::string error;
  EXPECT_FALSE(ValidateIncidentJsonFile(path, &error));
  EXPECT_NE(error.find("severity"), std::string::npos) << error;

  EXPECT_FALSE(ValidateIncidentJsonFile(
      TempDir() + "incident_test_no_such_file.json", &error));
}

}  // namespace
}  // namespace mobirescue::obs
