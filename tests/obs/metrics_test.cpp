#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mobirescue::obs {
namespace {

// Tests use their own Registry instances: production components register
// into Registry::Global(), so asserting on global contents would couple
// these tests to whatever else the process has constructed.

TEST(CounterTest, StartsAtZeroAndIncrements) {
  Registry reg;
  Counter c(reg, "test_events_total", "Events.");
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  EXPECT_EQ(c.name(), "test_events_total");
  EXPECT_EQ(c.help(), "Events.");
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Registry reg;
  Counter c(reg, "test_concurrent_total", "Concurrent increments.");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(CounterTest, RejectsInvalidPrometheusNames) {
  Registry reg;
  EXPECT_THROW(Counter(reg, "", "x"), std::invalid_argument);
  EXPECT_THROW(Counter(reg, "1starts_with_digit", "x"),
               std::invalid_argument);
  EXPECT_THROW(Counter(reg, "has-dash", "x"), std::invalid_argument);
  EXPECT_THROW(Counter(reg, "has space", "x"), std::invalid_argument);
  // Colons and underscores are legal Prometheus name characters.
  Counter ok(reg, "ns:sub_system_total", "x");
  EXPECT_EQ(reg.num_instruments(), 1u);
}

TEST(GaugeTest, SetAddValue) {
  Registry reg;
  Gauge g(reg, "test_depth", "Depth.");
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(7.5);
  EXPECT_DOUBLE_EQ(g.Value(), 7.5);
  g.Add(-2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 5.0);
  g.Set(1.0);  // Set overrides, never accumulates
  EXPECT_DOUBLE_EQ(g.Value(), 1.0);
}

TEST(HistogramTest, ObserveUsesInclusiveUpperBounds) {
  Registry reg;
  Histogram h(reg, "test_latency_ms", "Latency.", {1.0, 5.0, 25.0});
  h.Observe(0.5);   // bucket 0 (le 1.0)
  h.Observe(1.0);   // bucket 0: le is inclusive
  h.Observe(1.001);  // bucket 1 (le 5.0)
  h.Observe(25.0);  // bucket 2
  h.Observe(100.0);  // +Inf bucket
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.001 + 25.0 + 100.0);
  EXPECT_EQ(h.count(), 5u);
}

TEST(HistogramTest, RejectsBadBounds) {
  Registry reg;
  EXPECT_THROW(Histogram(reg, "test_h", "x", {}), std::invalid_argument);
  EXPECT_THROW(Histogram(reg, "test_h", "x", {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(Histogram(reg, "test_h", "x", {5.0, 1.0}),
               std::invalid_argument);
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  Registry reg;
  Histogram h(reg, "test_conc_ms", "x", {10.0, 100.0});
  constexpr int kThreads = 6;
  constexpr int kPerThread = 30000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((t + i) % 3) * 50.0);  // 0, 50, 100
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.counts[0] + s.counts[1] + s.counts[2], s.count);
  // 0 and 50 never land in +Inf; 100 <= le 100 is inclusive.
  EXPECT_EQ(s.counts[2], 0u);
}

TEST(HistogramTest, LatencyLadderIsStrictlyIncreasing) {
  const std::vector<double> b = Histogram::LatencyBucketsMs();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(RegistryTest, SameNameInstrumentsMergeInSnapshot) {
  Registry reg;
  Counter a(reg, "merged_total", "Merged.");
  Counter b(reg, "merged_total", "Merged.");
  a.Increment(3);
  b.Increment(4);
  EXPECT_EQ(reg.num_instruments(), 2u);
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "merged_total");
  EXPECT_EQ(snap[0].kind, InstrumentKind::kCounter);
  EXPECT_DOUBLE_EQ(snap[0].value, 7.0);
  // Per-instance views stay exact.
  EXPECT_EQ(a.Value(), 3u);
  EXPECT_EQ(b.Value(), 4u);
}

TEST(RegistryTest, SameNameHistogramsMergeBucketwise) {
  Registry reg;
  Histogram a(reg, "merged_ms", "x", {1.0, 10.0});
  Histogram b(reg, "merged_ms", "x", {1.0, 10.0});
  a.Observe(0.5);
  a.Observe(5.0);
  b.Observe(5.0);
  b.Observe(50.0);
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const HistogramSnapshot& h = snap[0].histogram;
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 60.5);
}

TEST(RegistryTest, KindConflictThrows) {
  Registry reg;
  Counter c(reg, "conflicted", "x");
  EXPECT_THROW(Gauge(reg, "conflicted", "x"), std::invalid_argument);
  EXPECT_THROW(Histogram(reg, "conflicted", "x", {1.0}),
               std::invalid_argument);
}

TEST(RegistryTest, HistogramBoundsConflictThrows) {
  Registry reg;
  Histogram a(reg, "bounds_ms", "x", {1.0, 10.0});
  EXPECT_THROW(Histogram(reg, "bounds_ms", "x", {1.0, 20.0}),
               std::invalid_argument);
}

TEST(RegistryTest, DeregistrationRemovesInstrument) {
  Registry reg;
  Counter keep(reg, "kept_total", "x");
  {
    Counter tmp(reg, "scoped_total", "x");
    tmp.Increment(9);
    EXPECT_EQ(reg.num_instruments(), 2u);
    EXPECT_EQ(reg.Snapshot().size(), 2u);
  }
  EXPECT_EQ(reg.num_instruments(), 1u);
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "kept_total");
  // The freed name is reusable, including at a different kind.
  Gauge g(reg, "scoped_total", "x");
  EXPECT_EQ(reg.num_instruments(), 2u);
}

TEST(RegistryTest, SnapshotIsNameSorted) {
  Registry reg;
  Counter z(reg, "zzz_total", "x");
  Gauge m(reg, "mmm_level", "x");
  Counter a(reg, "aaa_total", "x");
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aaa_total");
  EXPECT_EQ(snap[1].name, "mmm_level");
  EXPECT_EQ(snap[2].name, "zzz_total");
}

TEST(RegistryTest, SnapshotWhileWritersRun) {
  // Snapshots under live traffic must be tear-free and bounded by the
  // eventual total (quiescent exactness is asserted at the end).
  Registry reg;
  Counter c(reg, "live_total", "x");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.Increment();
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::vector<MetricSnapshot> snap = reg.Snapshot();
    ASSERT_EQ(snap.size(), 1u);
    const auto v = static_cast<std::uint64_t>(snap[0].value);
    EXPECT_GE(v, last);  // monotone across snapshots
    last = v;
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  EXPECT_GE(c.Value(), last);
}

TEST(HistogramTest, EmptyWindowQuantilesAreZero) {
  Registry reg;
  Histogram h(reg, "test_empty_ms", "x", {1.0, 10.0});
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  // No samples: every percentile reads 0, never NaN or a bucket edge.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.999), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesAndClampsAtInfBucket) {
  Registry reg;
  Histogram h(reg, "test_quantile_ms", "x", {1.0, 10.0});
  for (int i = 0; i < 5; ++i) h.Observe(0.5);   // le 1 bucket
  for (int i = 0; i < 5; ++i) h.Observe(100.0);  // +Inf bucket
  const HistogramSnapshot snap = h.Snapshot();
  // The median exhausts the first bucket: interpolation reaches its upper
  // bound exactly.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.0);
  // A quantile landing in the +Inf bucket has no finite edge to
  // interpolate toward: it clamps to the highest finite bound.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 10.0);
  // Out-of-range q is clamped, not rejected.
  EXPECT_DOUBLE_EQ(snap.Quantile(-1.0), snap.Quantile(0.0));
  EXPECT_DOUBLE_EQ(snap.Quantile(2.0), snap.Quantile(1.0));
}

TEST(RegistryTest, SameNameMergeStaysCoherentUnderConcurrentSnapshots) {
  // Same-name histogram instances churn (register, observe, deregister)
  // and a conflicting-bounds registration is attempted mid-stream, all
  // while observer threads snapshot the registry. Every snapshot must see
  // a well-formed merge: bucket counts consistent with the total, never a
  // torn or half-registered group.
  Registry reg;
  Histogram base(reg, "test_merge_churn_ms", "x", {1.0, 10.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> observers;
  for (int t = 0; t < 2; ++t) {
    observers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<MetricSnapshot> snap = reg.Snapshot();
        for (const MetricSnapshot& m : snap) {
          if (m.name != "test_merge_churn_ms") continue;
          ASSERT_EQ(m.histogram.counts.size(), 3u);
          std::uint64_t total = 0;
          for (std::uint64_t c : m.histogram.counts) total += c;
          EXPECT_EQ(total, m.histogram.count);
        }
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    Histogram extra(reg, "test_merge_churn_ms", "x", {1.0, 10.0});
    extra.Observe(0.5);
    base.Observe(5.0);
    // A bounds conflict must throw without disturbing the live group,
    // even while snapshots are being taken.
    EXPECT_THROW(Histogram(reg, "test_merge_churn_ms", "x", {1.0, 20.0}),
                 std::invalid_argument);
  }
  stop.store(true);
  for (std::thread& t : observers) t.join();
  // The churned instances died with their samples; only `base` remains.
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].histogram.count, 100u);
  EXPECT_EQ(snap[0].histogram.counts[1], 100u);  // all in (1, 10]
}

TEST(SnapshotDeltaTest, ReadsDeltasAndAbsentNamesAsZero) {
  Registry reg;
  Counter c(reg, "test_delta_total", "x");
  c.Increment(3);
  SnapshotDelta delta(reg);
  EXPECT_TRUE(delta.Has("test_delta_total"));
  EXPECT_DOUBLE_EQ(delta.Read("test_delta_total"), 3.0);
  EXPECT_DOUBLE_EQ(delta.Baseline("test_delta_total"), 3.0);
  EXPECT_DOUBLE_EQ(delta.Delta("test_delta_total"), 0.0);
  c.Increment(4);
  EXPECT_DOUBLE_EQ(delta.Read("test_delta_total"), 7.0);
  EXPECT_DOUBLE_EQ(delta.Delta("test_delta_total"), 4.0);
  // Names nobody registered read as zero everywhere, never throw.
  EXPECT_FALSE(delta.Has("test_never_registered"));
  EXPECT_DOUBLE_EQ(delta.Read("test_never_registered"), 0.0);
  EXPECT_DOUBLE_EQ(delta.Delta("test_never_registered"), 0.0);
}

TEST(SnapshotDeltaTest, RebaseMovesTheBaseline) {
  Registry reg;
  Counter c(reg, "test_rebase_total", "x");
  SnapshotDelta delta(reg);
  c.Increment(5);
  EXPECT_DOUBLE_EQ(delta.Delta("test_rebase_total"), 5.0);
  delta.Rebase();
  EXPECT_DOUBLE_EQ(delta.Delta("test_rebase_total"), 0.0);
  c.Increment(2);
  EXPECT_DOUBLE_EQ(delta.Delta("test_rebase_total"), 2.0);
}

TEST(SnapshotDeltaTest, LifetimeDeltaCoversBirthAndDeath) {
  Registry reg;
  SnapshotDelta delta(reg);  // baseline taken before the instrument exists
  {
    Counter c(reg, "test_lifetime_total", "x");
    c.Increment(5);
    EXPECT_DOUBLE_EQ(delta.Delta("test_lifetime_total"), 5.0);
  }
  // RAII deregistration: the dead instrument reads 0 again.
  EXPECT_FALSE(delta.Has("test_lifetime_total"));
  EXPECT_DOUBLE_EQ(delta.Read("test_lifetime_total"), 0.0);
}

TEST(SnapshotDeltaTest, HistogramsReadAsSampleCounts) {
  Registry reg;
  Histogram h(reg, "test_hist_reads_ms", "x", {1.0});
  SnapshotDelta delta(reg);
  h.Observe(0.5);
  h.Observe(50.0);
  EXPECT_DOUBLE_EQ(delta.Read("test_hist_reads_ms"), 2.0);
  EXPECT_DOUBLE_EQ(delta.Delta("test_hist_reads_ms"), 2.0);
}

TEST(RegistryTest, GlobalRegistryCarriesComponentInstruments) {
  // Default-constructed instruments join the process-global registry.
  const std::size_t before = Registry::Global().num_instruments();
  {
    Counter c("obs_test_global_probe_total", "Probe.");
    EXPECT_EQ(Registry::Global().num_instruments(), before + 1);
  }
  EXPECT_EQ(Registry::Global().num_instruments(), before);
}

}  // namespace
}  // namespace mobirescue::obs
