#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace mobirescue::obs {
namespace {

// Local recorders keep these tests independent of events emitted by
// instrumented production code on the global recorder.

TEST(FlightRecorderTest, EnabledByDefaultAndRecordsEvents) {
  FlightRecorder rec;
  EXPECT_TRUE(rec.enabled());  // the black box is on out of the box
  rec.Emit(Severity::kWarn, "serve", "quarantine", "person=7 reason=stale");
  rec.Emit(Severity::kError, "serve", "kill", "tick=97");
  const std::vector<Event> events = rec.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].severity, Severity::kWarn);
  EXPECT_STREQ(events[0].component, "serve");
  EXPECT_STREQ(events[0].kind, "quarantine");
  EXPECT_EQ(events[0].attrs, "person=7 reason=stale");
  EXPECT_EQ(events[1].severity, Severity::kError);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.emitted(), 2u);
}

TEST(FlightRecorderTest, DisabledRecorderDropsNothingSilently) {
  FlightRecorder rec;
  rec.Disable();
  rec.Emit(Severity::kInfo, "serve", "tick_start");
  EXPECT_TRUE(rec.Collect().empty());
  EXPECT_EQ(rec.emitted(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsEmissionOrder) {
  FlightRecorder rec;
  rec.set_ring_capacity(4);
  for (int i = 0; i < 10; ++i) {
    rec.Emit(Severity::kInfo, "sim", "blockage", "n=" + std::to_string(i));
  }
  const std::vector<Event> events = rec.Collect();
  ASSERT_EQ(events.size(), 4u);
  // Overwrite-oldest: exactly the newest four survive, still seq-sorted.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].attrs, "n=" + std::to_string(6 + i));
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.emitted(), 10u);
}

TEST(FlightRecorderTest, CollectRecentReturnsTheTail) {
  FlightRecorder rec;
  for (int i = 0; i < 8; ++i) {
    rec.Emit(Severity::kInfo, "learn", "promotion", "n=" + std::to_string(i));
  }
  const std::vector<Event> tail = rec.CollectRecent(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].attrs, "n=5");
  EXPECT_EQ(tail[2].attrs, "n=7");
  // A window wider than the history returns everything.
  EXPECT_EQ(rec.CollectRecent(100).size(), 8u);
}

TEST(FlightRecorderTest, ClearDropsEventsButSeqKeepsCounting) {
  FlightRecorder rec;
  rec.Emit(Severity::kInfo, "serve", "tick_start");
  rec.Clear();
  EXPECT_TRUE(rec.Collect().empty());
  EXPECT_EQ(rec.dropped(), 0u);
  rec.Emit(Severity::kInfo, "serve", "tick_end");
  const std::vector<Event> events = rec.Collect();
  ASSERT_EQ(events.size(), 1u);
  // seq stays process-unique across Clear, so bundles never alias events.
  EXPECT_EQ(events[0].seq, 2u);
}

TEST(FlightRecorderTest, ConcurrentEmittersGetUniqueTotalOrder) {
  FlightRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  rec.set_ring_capacity(kPerThread + 16);  // per-thread rings: no wrap
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Emit(Severity::kInfo, "bench", "event");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<Event> events = rec.Collect();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.dropped(), 0u);
  std::set<std::uint64_t> seqs;
  for (std::size_t i = 0; i < events.size(); ++i) {
    seqs.insert(events[i].seq);
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
  // The global seq gives every event a distinct place in one timeline.
  EXPECT_EQ(seqs.size(), events.size());
}

TEST(FlightRecorderTest, SeverityNames) {
  EXPECT_STREQ(SeverityName(Severity::kInfo), "info");
  EXPECT_STREQ(SeverityName(Severity::kWarn), "warn");
  EXPECT_STREQ(SeverityName(Severity::kError), "error");
}

}  // namespace
}  // namespace mobirescue::obs
