#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace mobirescue::obs {
namespace {

// Local recorders keep these tests independent of spans produced by
// instrumented production code on the global recorder.

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  { ScopedSpan span("noop", rec); }
  EXPECT_TRUE(rec.Collect().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceTest, SpanRecordsNameAndDuration) {
  TraceRecorder rec;
  rec.Enable();
  {
    ScopedSpan outer("outer", rec);
    ScopedSpan inner("inner", rec);
  }
  rec.Disable();
  const std::vector<TraceEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 2u);
  // Collect sorts by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  // Inner closes first (reverse destruction order), so outer covers it.
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(TraceTest, SpanStartedWhileDisabledStaysUnrecorded) {
  TraceRecorder rec;
  {
    ScopedSpan span("early", rec);  // recorder disabled at entry
    rec.Enable();
  }
  EXPECT_TRUE(rec.Collect().empty());
}

TEST(TraceTest, ClearResetsEventsAndEpoch) {
  TraceRecorder rec;
  rec.Enable();
  { ScopedSpan span("before_clear", rec); }
  ASSERT_EQ(rec.Collect().size(), 1u);
  rec.Clear();
  EXPECT_TRUE(rec.Collect().empty());
  EXPECT_EQ(rec.dropped(), 0u);
  { ScopedSpan span("after_clear", rec); }
  const std::vector<TraceEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "after_clear");
}

TEST(TraceTest, RingWrapsAndCountsDrops) {
  TraceRecorder rec;
  rec.set_ring_capacity(8);
  rec.Enable();
  for (int i = 0; i < 20; ++i) {
    ScopedSpan span("spin", rec);
  }
  const std::vector<TraceEvent> events = rec.Collect();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
  // The retained window is the most recent events: starts are the 8
  // latest, still sorted ascending.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST(TraceTest, ZeroCapacityDropsEverything) {
  TraceRecorder rec;
  rec.set_ring_capacity(0);
  rec.Enable();
  { ScopedSpan span("dropped", rec); }
  EXPECT_TRUE(rec.Collect().empty());
  EXPECT_EQ(rec.dropped(), 1u);
}

TEST(TraceTest, ThreadsGetDistinctStableTids) {
  TraceRecorder rec;
  rec.Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("worker", rec);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<TraceEvent> events = rec.Collect();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceTest, CollectUnderConcurrentRecording) {
  TraceRecorder rec;
  rec.set_ring_capacity(1024);
  rec.Enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < 20000; ++i) {
        ScopedSpan span("churn", rec);
      }
    });
  }
  // Collect concurrently with recording: events must always be internally
  // consistent (named, sorted) even while rings wrap underneath.
  for (int i = 0; i < 50; ++i) {
    const std::vector<TraceEvent> events = rec.Collect();
    for (std::size_t k = 1; k < events.size(); ++k) {
      ASSERT_GE(events[k].start_ns, events[k - 1].start_ns);
    }
    for (const TraceEvent& e : events) {
      ASSERT_NE(e.name, nullptr);
      ASSERT_STREQ(e.name, "churn");
    }
  }
  for (std::thread& t : threads) t.join();
}

TEST(TraceTest, SeparateRecordersAreIndependent) {
  // The thread-local ring cache must not leak a ring from one recorder
  // into another (recorders are id-keyed, not address-keyed).
  auto first = std::make_unique<TraceRecorder>();
  first->Enable();
  { ScopedSpan span("first", *first); }
  ASSERT_EQ(first->Collect().size(), 1u);
  first.reset();

  TraceRecorder second;
  second.Enable();
  { ScopedSpan span("second", second); }
  const std::vector<TraceEvent> events = second.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second");
}

TEST(TraceTest, GlobalRecorderDrivesObsSpanMacro) {
  TraceRecorder& global = TraceRecorder::Global();
  global.Clear();
  global.Enable();
  { OBS_SPAN("macro.span"); }
  global.Disable();
  const std::vector<TraceEvent> events = global.Collect();
  const auto it = std::find_if(
      events.begin(), events.end(), [](const TraceEvent& e) {
        return std::string(e.name) == "macro.span";
      });
  EXPECT_NE(it, events.end());
  global.Clear();
}

}  // namespace
}  // namespace mobirescue::obs
