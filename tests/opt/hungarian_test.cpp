#include "opt/hungarian.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobirescue::opt {
namespace {

AssignmentProblem Make(std::size_t rows, std::size_t cols,
                       std::initializer_list<double> costs) {
  AssignmentProblem p;
  p.rows = rows;
  p.cols = cols;
  p.cost.assign(costs);
  return p;
}

TEST(HungarianTest, SolvesKnown3x3) {
  // Classic example: optimal assignment cost 5 (1+2+2... verify below).
  const AssignmentProblem p = Make(3, 3,
                                   {4, 1, 3,
                                    2, 0, 5,
                                    3, 2, 2});
  const AssignmentResult r = SolveAssignment(p);
  EXPECT_DOUBLE_EQ(r.total_cost, 5.0);  // (0,1)+(1,0)+(2,2) = 1+2+2
  EXPECT_EQ(r.row_to_col[0], 1);
  EXPECT_EQ(r.row_to_col[1], 0);
  EXPECT_EQ(r.row_to_col[2], 2);
}

TEST(HungarianTest, AssignmentIsPermutation) {
  util::Rng rng(8);
  AssignmentProblem p;
  p.rows = p.cols = 12;
  p.cost.resize(144);
  for (double& c : p.cost) c = rng.Uniform(0, 100);
  const AssignmentResult r = SolveAssignment(p);
  std::vector<char> used(12, 0);
  for (int col : r.row_to_col) {
    ASSERT_GE(col, 0);
    ASSERT_LT(col, 12);
    EXPECT_FALSE(used[col]);
    used[col] = 1;
  }
}

TEST(HungarianTest, BeatsOrEqualsGreedyOnRandomInstances) {
  util::Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    AssignmentProblem p;
    p.rows = p.cols = 8;
    p.cost.resize(64);
    for (double& c : p.cost) c = rng.Uniform(0, 10);
    const double exact = SolveAssignment(p).total_cost;
    const double greedy = SolveAssignmentGreedy(p).total_cost;
    EXPECT_LE(exact, greedy + 1e-9);
  }
}

TEST(HungarianTest, BruteForceAgreementSmall) {
  util::Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    AssignmentProblem p;
    p.rows = p.cols = 5;
    p.cost.resize(25);
    for (double& c : p.cost) c = rng.Uniform(0, 10);
    // Brute force over all 120 permutations.
    std::vector<int> perm = {0, 1, 2, 3, 4};
    double best = 1e18;
    do {
      double cost = 0;
      for (int i = 0; i < 5; ++i) cost += p.at(i, perm[i]);
      best = std::min(best, cost);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(SolveAssignment(p).total_cost, best, 1e-9);
  }
}

TEST(HungarianTest, RectangularMoreColsLeavesColumnsUnused) {
  const AssignmentProblem p = Make(2, 3,
                                   {5, 1, 9,
                                    5, 9, 1});
  const AssignmentResult r = SolveAssignment(p);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
  EXPECT_EQ(r.row_to_col[0], 1);
  EXPECT_EQ(r.row_to_col[1], 2);
}

TEST(HungarianTest, RectangularMoreRowsLeavesRowsUnassigned) {
  const AssignmentProblem p = Make(3, 1, {3, 1, 2});
  const AssignmentResult r = SolveAssignment(p);
  EXPECT_DOUBLE_EQ(r.total_cost, 1.0);
  int assigned = 0;
  for (int c : r.row_to_col) assigned += (c >= 0);
  EXPECT_EQ(assigned, 1);
  EXPECT_EQ(r.row_to_col[1], 0);
}

TEST(HungarianTest, ForbiddenCostMeansUnassigned) {
  const AssignmentProblem p = Make(2, 2,
                                   {1.0, kForbiddenCost,
                                    kForbiddenCost, kForbiddenCost});
  const AssignmentResult r = SolveAssignment(p);
  EXPECT_EQ(r.row_to_col[0], 0);
  EXPECT_EQ(r.row_to_col[1], -1);
  EXPECT_DOUBLE_EQ(r.total_cost, 1.0);
}

TEST(HungarianTest, RejectsNonFiniteCosts) {
  AssignmentProblem p = Make(1, 1, {1.0});
  p.cost[0] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(SolveAssignment(p), std::invalid_argument);
}

TEST(HungarianTest, SizeMismatchThrows) {
  AssignmentProblem p;
  p.rows = 2;
  p.cols = 2;
  p.cost = {1.0};
  EXPECT_THROW(SolveAssignment(p), std::invalid_argument);
}

TEST(HungarianTest, EmptyProblem) {
  const AssignmentResult r = SolveAssignment(AssignmentProblem{});
  EXPECT_TRUE(r.row_to_col.empty());
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

}  // namespace
}  // namespace mobirescue::opt
