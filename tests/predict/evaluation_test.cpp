#include "predict/evaluation.hpp"

#include <gtest/gtest.h>

#include "roadnet/city_builder.hpp"

namespace mobirescue::predict {
namespace {

mobility::RescueEvent Event(int day, int hour, roadnet::SegmentId seg) {
  mobility::RescueEvent ev;
  ev.request_time = day * util::kSecondsPerDay + hour * util::kSecondsPerHour +
                    60.0;
  ev.request_segment = seg;
  return ev;
}

class EvaluationTest : public ::testing::Test {
 protected:
  EvaluationTest() {
    roadnet::CityConfig config;
    config.grid_width = 6;
    config.grid_height = 6;
    city_ = roadnet::BuildCity(config);
  }
  roadnet::City city_;
};

TEST_F(EvaluationTest, PerfectPredictorScoresOne) {
  std::vector<mobility::RescueEvent> events = {Event(4, 9, 0), Event(4, 15, 1)};
  const auto scores = EvaluateSegmentPredictions(
      city_.network, events, 4, [&](roadnet::SegmentId seg, int hour) {
        return (seg == 0 && hour == 9) || (seg == 1 && hour == 15);
      });
  ASSERT_EQ(scores.accuracies.size(), 2u);
  for (double a : scores.accuracies) EXPECT_DOUBLE_EQ(a, 1.0);
  for (double p : scores.precisions) EXPECT_DOUBLE_EQ(p, 1.0);
  EXPECT_EQ(scores.overall.fn, 0u);
  EXPECT_EQ(scores.overall.fp, 0u);
}

TEST_F(EvaluationTest, AlwaysNoPredictorGetsAccuracyFromTN) {
  std::vector<mobility::RescueEvent> events = {Event(4, 9, 0)};
  const auto scores = EvaluateSegmentPredictions(
      city_.network, events, 4,
      [](roadnet::SegmentId, int) { return false; });
  // Only segment 0 has activity; its accuracy is 23/24 (one missed hour).
  ASSERT_EQ(scores.accuracies.size(), 1u);
  EXPECT_NEAR(scores.accuracies[0], 23.0 / 24.0, 1e-12);
  // No predicted positives anywhere: no precision entries.
  EXPECT_TRUE(scores.precisions.empty());
}

TEST_F(EvaluationTest, FalsePositivesLowerPrecision) {
  std::vector<mobility::RescueEvent> events = {Event(4, 9, 0)};
  const auto scores = EvaluateSegmentPredictions(
      city_.network, events, 4, [](roadnet::SegmentId seg, int hour) {
        return seg == 0 && (hour == 9 || hour == 10);  // one TP, one FP
      });
  ASSERT_EQ(scores.precisions.size(), 1u);
  EXPECT_DOUBLE_EQ(scores.precisions[0], 0.5);
}

TEST_F(EvaluationTest, OtherDaysIgnored) {
  std::vector<mobility::RescueEvent> events = {Event(3, 9, 0)};
  const auto scores = EvaluateSegmentPredictions(
      city_.network, events, 4,
      [](roadnet::SegmentId, int) { return false; });
  EXPECT_TRUE(scores.accuracies.empty());  // no activity on eval day
}

}  // namespace
}  // namespace mobirescue::predict
