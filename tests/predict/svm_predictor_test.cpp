#include "predict/svm_predictor.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/world.hpp"

namespace mobirescue::predict {
namespace {

/// One shared small world: building it (trace generation) is the expensive
/// part, so do it once for the whole suite.
class SvmPredictorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::WorldConfig config;
    config.city.grid_width = 12;
    config.city.grid_height = 12;
    config.city.num_hospitals = 5;
    config.trace.population.num_people = 400;
    world_ = new core::World(core::BuildWorld(config));
    predictor_ = core::TrainSvmPredictor(*world_).release();
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete world_;
  }

  static core::World* world_;
  static SvmRequestPredictor* predictor_;
};

core::World* SvmPredictorTest::world_ = nullptr;
SvmRequestPredictor* SvmPredictorTest::predictor_ = nullptr;

TEST_F(SvmPredictorTest, HeldOutAccuracyIsHigh) {
  // Flooding labels are strongly determined by (P, W, A); the SVM should
  // comfortably beat coin flipping on the 20% hold-out.
  EXPECT_GT(predictor_->validation().Accuracy(), 0.8);
  EXPECT_GT(predictor_->validation().Precision(), 0.7);
  EXPECT_GT(predictor_->training_rows(), 100u);
}

TEST_F(SvmPredictorTest, FloodedPositionPredictedPositive) {
  // At the eval storm's end, the wet low-lying south-east screams "rescue".
  // (Pre-storm inputs are out of the training distribution — the system
  // only ever queries the SVM during an active disaster.)
  const auto& spec = world_->eval.spec;
  const util::GeoPoint wet = world_->city->box.At(0.85, 0.15);
  EXPECT_TRUE(predictor_->PredictPerson(wet, spec.storm.storm_end_s));
}

TEST_F(SvmPredictorTest, HighGroundPredictedNegativeEvenInStorm) {
  const auto& spec = world_->eval.spec;
  const util::GeoPoint high = world_->city->box.At(0.05, 0.95);
  EXPECT_FALSE(predictor_->PredictPerson(high, spec.storm.storm_peak_s));
}

TEST_F(SvmPredictorTest, DistributionCountsPeopleOnSegments) {
  const auto& spec = world_->eval.spec;
  // Synthetic snapshot: 5 people at a flooded spot, 3 on high ground.
  std::vector<mobility::GpsRecord> snapshot;
  const util::GeoPoint wet = world_->city->box.At(0.85, 0.15);
  const util::GeoPoint dry = world_->city->box.At(0.05, 0.95);
  for (int i = 0; i < 5; ++i) {
    snapshot.push_back({i, 0.0, wet, 0.0, 0.0});
  }
  for (int i = 5; i < 8; ++i) {
    snapshot.push_back({i, 0.0, dry, 0.0, 0.0});
  }
  const Distribution dist = predictor_->PredictDistribution(
      snapshot, 0.0, spec.storm.storm_end_s, *world_->index);
  int total = 0;
  for (const auto& [seg, count] : dist) total += count;
  EXPECT_EQ(total, 5);  // only the flooded five
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_EQ(dist.begin()->second, 5);
}

TEST_F(SvmPredictorTest, EmptySnapshotEmptyDistribution) {
  EXPECT_TRUE(predictor_
                  ->PredictDistribution({}, 0.0,
                                        world_->eval.spec.storm.storm_end_s,
                                        *world_->index)
                  .empty());
}

}  // namespace
}  // namespace mobirescue::predict
