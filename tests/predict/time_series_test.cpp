#include "predict/time_series_predictor.hpp"

#include <gtest/gtest.h>

namespace mobirescue::predict {
namespace {

mobility::RescueEvent Event(double day, double hour, roadnet::SegmentId seg) {
  mobility::RescueEvent ev;
  ev.request_time = day * util::kSecondsPerDay + hour * util::kSecondsPerHour;
  ev.request_segment = seg;
  return ev;
}

TEST(TimeSeriesTest, AveragesSameHourOverDays) {
  // Segment 5 sees 2 requests at hour 9 on each of days 3 and 4.
  std::vector<mobility::RescueEvent> history = {
      Event(3, 9.1, 5), Event(3, 9.5, 5), Event(4, 9.2, 5), Event(4, 9.8, 5)};
  TimeSeriesConfig config;
  config.decay = 1.0;  // uniform weights for easy arithmetic
  config.history_days = 5;
  TimeSeriesPredictor predictor(history, /*eval_day=*/5, config);
  // Weighted average over days 0..4 with uniform weights: only days 3,4 had
  // demand (2 each); days 0-2 contribute zeros.
  EXPECT_NEAR(predictor.PredictSegmentHour(5, 9), 4.0 / 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(predictor.PredictSegmentHour(5, 10), 0.0);
}

TEST(TimeSeriesTest, RecencyWeighting) {
  // Day 4 (recent) has demand, day 0 (old) has demand; with decay < 1 the
  // recent day dominates the weighted average.
  std::vector<mobility::RescueEvent> history_recent = {Event(4, 12.0, 1)};
  std::vector<mobility::RescueEvent> history_old = {Event(0, 12.0, 1)};
  TimeSeriesConfig config;
  config.decay = 0.5;
  config.history_days = 5;
  TimeSeriesPredictor recent(history_recent, 5, config);
  TimeSeriesPredictor old(history_old, 5, config);
  EXPECT_GT(recent.PredictSegmentHour(1, 12), old.PredictSegmentHour(1, 12));
}

TEST(TimeSeriesTest, IgnoresEvalDayAndLater) {
  std::vector<mobility::RescueEvent> history = {Event(5, 9.0, 3),
                                                Event(6, 9.0, 3)};
  TimeSeriesPredictor predictor(history, /*eval_day=*/5, {});
  EXPECT_DOUBLE_EQ(predictor.PredictSegmentHour(3, 9), 0.0);
}

TEST(TimeSeriesTest, PredictHourThreshold) {
  std::vector<mobility::RescueEvent> history = {Event(4, 7.0, 1),
                                                Event(4, 7.0, 1),
                                                Event(4, 7.0, 2)};
  TimeSeriesConfig config;
  config.decay = 1.0;
  config.history_days = 1;
  TimeSeriesPredictor predictor(history, 5, config);
  const auto hot = predictor.PredictHour(7, 1.5);
  EXPECT_EQ(hot.size(), 1u);
  EXPECT_TRUE(hot.count(1));
  const auto all = predictor.PredictHour(7, 0.5);
  EXPECT_EQ(all.size(), 2u);
}

TEST(TimeSeriesTest, UnknownSegmentIsZero) {
  TimeSeriesPredictor predictor({}, 5, {});
  EXPECT_DOUBLE_EQ(predictor.PredictSegmentHour(42, 10), 0.0);
  EXPECT_TRUE(predictor.PredictHour(10).empty());
}

}  // namespace
}  // namespace mobirescue::predict
