// Property tests: monotonicity and consistency of the weather/flood
// substrate, parameterized over randomized probe positions.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "weather/flood_model.hpp"
#include "weather/scenario.hpp"

namespace mobirescue::weather {
namespace {

class FloodPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  FloodPropertyTest()
      : spec_(FlorenceScenario()),
        field_(util::kCharlotteCropBox, spec_.storm),
        terrain_(util::kCharlotteCropBox),
        flood_(field_, terrain_),
        rng_(GetParam()) {}

  util::GeoPoint RandomPoint() {
    return util::kCharlotteCropBox.At(rng_.Uniform(0.02, 0.98),
                                      rng_.Uniform(0.02, 0.98));
  }

  ScenarioSpec spec_;
  WeatherField field_;
  roadnet::TerrainModel terrain_;
  FloodModel flood_;
  util::Rng rng_;
};

TEST_P(FloodPropertyTest, AccumulationIsMonotoneInTime) {
  const util::GeoPoint p = RandomPoint();
  double prev = -1.0;
  for (double t = 0.0; t <= 9 * util::kSecondsPerDay; t += 10800.0) {
    const double acc = field_.AccumulatedPrecipitation(p, t);
    ASSERT_GE(acc, prev - 1e-9);
    prev = acc;
  }
}

TEST_P(FloodPropertyTest, DepthRisesThroughStormFallsAfter) {
  const util::GeoPoint p = RandomPoint();
  const double mid = flood_.DepthAt(p, spec_.storm.storm_peak_s);
  const double end = flood_.DepthAt(p, spec_.storm.storm_end_s);
  const double later =
      flood_.DepthAt(p, spec_.storm.storm_end_s + 4 * util::kSecondsPerDay);
  ASSERT_GE(end, mid - 1e-9);   // still accumulating until the storm ends
  ASSERT_LE(later, end + 1e-9); // recession afterwards
}

TEST_P(FloodPropertyTest, DepthAntitoneInAltitude) {
  // Among random same-rain points, deeper water only on lower ground:
  // construct two probes at the same (x) longitude band so the rain factor
  // is similar, then compare depth ordering against altitude ordering with
  // tolerance for the spatial rain gradient.
  const double x = rng_.Uniform(0.1, 0.9);
  const util::GeoPoint a = util::kCharlotteCropBox.At(x, rng_.Uniform(0.05, 0.45));
  const util::GeoPoint b = util::kCharlotteCropBox.At(x, rng_.Uniform(0.55, 0.95));
  const double t = spec_.storm.storm_end_s;
  const double alt_a = terrain_.AltitudeAt(a), alt_b = terrain_.AltitudeAt(b);
  const double depth_a = flood_.DepthAt(a, t), depth_b = flood_.DepthAt(b, t);
  // Strong claim only when the altitude gap is decisive.
  if (alt_a + 40.0 < alt_b) {
    EXPECT_GE(depth_a, depth_b * 0.5);
  } else if (alt_b + 40.0 < alt_a) {
    EXPECT_GE(depth_b, depth_a * 0.5);
  }
}

TEST_P(FloodPropertyTest, ZonePredicateConsistentWithDepth) {
  for (int i = 0; i < 20; ++i) {
    const util::GeoPoint p = RandomPoint();
    const double t = rng_.Uniform(0.0, 9 * util::kSecondsPerDay);
    ASSERT_EQ(flood_.InFloodZone(p, t),
              flood_.DepthAt(p, t) >= flood_.config().zone_depth_m);
  }
}

TEST_P(FloodPropertyTest, WindAndRainNonNegativeEverywhere) {
  for (int i = 0; i < 20; ++i) {
    const util::GeoPoint p = RandomPoint();
    const double t = rng_.Uniform(0.0, 9 * util::kSecondsPerDay);
    ASSERT_GE(field_.PrecipitationAt(p, t), 0.0);
    ASSERT_GE(field_.WindAt(p, t), 0.0);
    ASSERT_GE(field_.AccumulatedPrecipitation(p, t), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloodPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mobirescue::weather
