// Property tests for the spatial index and the batched geo kernels: over
// random road networks and random query points (inside the box, far outside
// it, with and without radius limits, with long segments whose nearest point
// is far from their bucketed midpoint), the grid-accelerated nearest-segment
// answer must match brute force, and the batched SoA path must return the
// same segment id as the scalar reference for every query.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "roadnet/road_network.hpp"
#include "roadnet/spatial_index.hpp"
#include "util/geo.hpp"
#include "util/geo_batch.hpp"
#include "util/rng.hpp"

namespace mobirescue::roadnet {
namespace {

struct RandomWorld {
  RoadNetwork net;
  util::BoundingBox box;
};

/// A random network: mostly short segments, a few very long ones (their
/// nearest point can be many cells from their midpoint — the max_half_len
/// slack in the ring bound exists for exactly these).
RandomWorld BuildRandomWorld(util::Rng& rng, int num_segments) {
  RandomWorld w;
  // Random box shape: aspect ratios from tall-thin to wide-flat, so cells
  // are anisotropic more often than not.
  const double lat0 = rng.Uniform(34.0, 36.0);
  const double lon0 = rng.Uniform(-80.0, -78.0);
  w.box = {{lat0, lon0},
           {lat0 + rng.Uniform(0.01, 0.4), lon0 + rng.Uniform(0.01, 0.4)}};
  for (int i = 0; i < num_segments; ++i) {
    const util::GeoPoint a =
        w.box.At(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    const bool long_segment = rng.Bernoulli(0.1);
    const double reach = long_segment ? 0.5 : 0.02;
    const util::GeoPoint b = w.box.At(
        std::clamp(rng.Uniform(-reach, reach) +
                       (a.lon - w.box.south_west.lon) /
                           (w.box.north_east.lon - w.box.south_west.lon),
                   0.0, 1.0),
        std::clamp(rng.Uniform(-reach, reach) +
                       (a.lat - w.box.south_west.lat) /
                           (w.box.north_east.lat - w.box.south_west.lat),
                   0.0, 1.0));
    const LandmarkId la = w.net.AddLandmark(a, 0.0, 1);
    const LandmarkId lb = w.net.AddLandmark(b, 0.0, 1);
    w.net.AddSegment(la, lb, 10.0);
  }
  return w;
}

double DistTo(const RoadNetwork& net, SegmentId sid, const util::GeoPoint& p) {
  const RoadSegment& seg = net.segment(sid);
  return util::PointToSegmentMeters(p, net.landmark(seg.from).pos,
                                    net.landmark(seg.to).pos);
}

SegmentId BruteNearest(const RoadNetwork& net, const util::GeoPoint& p,
                       double max_radius_m) {
  SegmentId best = kInvalidSegment;
  double best_d = 1e18;
  for (const RoadSegment& seg : net.segments()) {
    const double d = DistTo(net, seg.id, p);
    if (d < best_d) {
      best_d = d;
      best = seg.id;
    }
  }
  if (max_radius_m >= 0.0 && best != kInvalidSegment && best_d > max_radius_m) {
    return kInvalidSegment;
  }
  return best;
}

TEST(GeoPropertyTest, NearestSegmentMatchesBruteForceOnRandomWorlds) {
  util::Rng rng(20240601);
  for (int world = 0; world < 12; ++world) {
    RandomWorld w = BuildRandomWorld(rng, 60 + world * 25);
    const int cells = 1 + static_cast<int>(rng.Index(24));
    SpatialIndex index(w.net, w.box, cells);
    for (int q = 0; q < 120; ++q) {
      // Mix of interior points and points well outside the box (the
      // clamped-cell early-termination case).
      const double span = q % 3 == 0 ? 2.5 : 1.0;
      const util::GeoPoint p = w.box.At(rng.Uniform(0.5 - span, 0.5 + span),
                                        rng.Uniform(0.5 - span, 0.5 + span));
      const double radius =
          q % 4 == 0 ? rng.Uniform(50.0, 5000.0) : -1.0;
      const SegmentId fast = index.NearestSegment(p, radius);
      const SegmentId brute = BruteNearest(w.net, p, radius);
      if (fast == brute) continue;  // same id, including both-invalid
      // Distinct ids are only acceptable as exact geometric ties.
      ASSERT_NE(fast, kInvalidSegment)
          << "world " << world << " cells " << cells << " missed a segment at "
          << p.lat << "," << p.lon << " radius " << radius;
      ASSERT_NE(brute, kInvalidSegment);
      ASSERT_EQ(DistTo(w.net, fast, p), DistTo(w.net, brute, p))
          << "world " << world << " cells " << cells << " point " << p.lat
          << "," << p.lon << " radius " << radius;
    }
  }
}

TEST(GeoPropertyTest, BatchedNearestMatchesScalarOnRandomWorlds) {
  util::Rng rng(77);
  for (int world = 0; world < 8; ++world) {
    RandomWorld w = BuildRandomWorld(rng, 120);
    SpatialIndex index(w.net, w.box, 1 + static_cast<int>(rng.Index(20)));
    std::vector<util::GeoPoint> pts;
    for (int q = 0; q < 300; ++q) {
      pts.push_back(
          w.box.At(rng.Uniform(-1.0, 2.0), rng.Uniform(-1.0, 2.0)));
    }
    const double radius = world % 2 == 0 ? -1.0 : rng.Uniform(100.0, 3000.0);
    std::vector<SegmentId> batch(pts.size(), kInvalidSegment);
    index.NearestSegments(pts.data(), pts.size(), radius, batch.data());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ASSERT_EQ(index.NearestSegment(pts[i], radius), batch[i])
          << "world " << world << " query " << i;
    }
  }
}

TEST(GeoPropertyTest, BatchedKernelsMatchScalarOnRandomInputs) {
  util::Rng rng(31337);
  for (int round = 0; round < 5; ++round) {
    const std::size_t n = 64 + rng.Index(512);
    std::vector<double> a_lat(n), a_lon(n), b_lat(n), b_lon(n);
    for (std::size_t i = 0; i < n; ++i) {
      a_lat[i] = rng.Uniform(-60.0, 60.0);
      a_lon[i] = rng.Uniform(-179.0, 179.0);
      b_lat[i] = a_lat[i] + rng.Uniform(-0.5, 0.5);
      b_lon[i] = a_lon[i] + rng.Uniform(-0.5, 0.5);
    }
    const util::GeoPoint ref{rng.Uniform(-60.0, 60.0),
                             rng.Uniform(-179.0, 179.0)};
    std::vector<double> approx(n), hav(n), p2s(n);
    util::ApproxDistanceMetersBatch(a_lat.data(), a_lon.data(), n, ref,
                                    approx.data());
    util::HaversineMetersBatch(a_lat.data(), a_lon.data(), n, ref, hav.data());
    util::PointToSegmentMetersBatch(ref, a_lat.data(), a_lon.data(),
                                    b_lat.data(), b_lon.data(), n, p2s.data());
    for (std::size_t i = 0; i < n; ++i) {
      const util::GeoPoint a{a_lat[i], a_lon[i]};
      const util::GeoPoint b{b_lat[i], b_lon[i]};
      ASSERT_EQ(util::ApproxDistanceMeters(a, ref), approx[i]);
      ASSERT_EQ(util::HaversineMeters(a, ref), hav[i]);
      ASSERT_EQ(util::PointToSegmentMeters(ref, a, b), p2s[i]);
    }
  }
}

}  // namespace
}  // namespace mobirescue::roadnet
