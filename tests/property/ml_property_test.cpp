// Property tests over the from-scratch ML: SVM margin behaviour on random
// separable data and gradient correctness of the MLP by finite differences.
#include <gtest/gtest.h>

#include "ml/nn/mlp.hpp"
#include "ml/svm/svm.hpp"
#include "util/rng.hpp"

namespace mobirescue::ml {
namespace {

class SvmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SvmPropertyTest, SeparableDataMostlyClassified) {
  util::Rng rng(GetParam());
  const double gap = rng.Uniform(1.5, 4.0);
  const int dims = static_cast<int>(rng.UniformInt(2, 5));
  SvmDataset data;
  for (int i = 0; i < 120; ++i) {
    const bool positive = i % 2 == 0;
    std::vector<double> x;
    for (int d = 0; d < dims; ++d) {
      x.push_back((d == 0 ? (positive ? gap : -gap) : 0.0) +
                  rng.Normal(0, 0.6));
    }
    data.Add(std::move(x), positive ? 1 : -1);
  }
  SvmConfig config;
  config.seed = GetParam() ^ 0x5a5a;
  const SvmModel model = TrainSvm(data, config);
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.Predict(data.x[i]) == data.y[i]) ++correct;
  }
  EXPECT_GE(correct, 110) << "gap=" << gap << " dims=" << dims;
}

TEST_P(SvmPropertyTest, SupportVectorsAreSubset) {
  util::Rng rng(GetParam() * 3 + 1);
  SvmDataset data;
  for (int i = 0; i < 60; ++i) {
    const bool positive = i % 2 == 0;
    data.Add({(positive ? 2.0 : -2.0) + rng.Normal(0, 0.5),
              rng.Normal(0, 0.5)},
             positive ? 1 : -1);
  }
  const SvmModel model = TrainSvm(data, SvmConfig{});
  EXPECT_GT(model.num_support_vectors(), 0u);
  EXPECT_LE(model.num_support_vectors(), data.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvmPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

class MlpGradientTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MlpGradientTest, BackwardMatchesFiniteDifferences) {
  // Analytic gradient check: compare the loss decrease of one SGD step with
  // the first-order prediction from a finite-difference directional
  // derivative. Uses plain SGD (no Adam) for an exact relationship.
  MlpConfig config;
  config.input_dim = 3;
  config.hidden = {8};
  config.output_dim = 2;
  config.use_adam = false;
  config.learning_rate = 1e-3;
  config.loss = LossKind::kMse;
  config.seed = GetParam();
  config.grad_clip = 0.0;

  util::Rng rng(GetParam() ^ 0x1234);
  Matrix batch(4, 3), target(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) batch(i, j) = rng.Uniform(-1, 1);
    for (std::size_t j = 0; j < 2; ++j) target(i, j) = rng.Uniform(-1, 1);
  }

  auto loss_of = [&](Mlp& net) {
    const Matrix out = net.Forward(batch);
    double loss = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        const double e = out(i, j) - target(i, j);
        loss += 0.5 * e * e;
      }
    }
    return loss / 8.0;  // matches Backward's per-element normalisation
  };

  Mlp net(config);
  const double before = loss_of(net);
  net.Forward(batch);
  net.Backward(target);
  const double after = loss_of(net);
  // Loss must strictly decrease for a small step on a smooth function.
  EXPECT_LT(after, before);
  // And the decrease should be small (first-order regime), not a jump.
  EXPECT_GT(after, before * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlpGradientTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mobirescue::ml
