// Property tests: the Dijkstra router against a brute-force Bellman-Ford
// reference on randomized graphs and conditions (parameterized over seeds).
#include <gtest/gtest.h>

#include <limits>

#include "roadnet/road_network.hpp"
#include "roadnet/router.hpp"
#include "util/rng.hpp"

namespace mobirescue::roadnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct RandomGraph {
  RoadNetwork net;
  NetworkCondition cond;
};

RandomGraph MakeRandomGraph(std::uint64_t seed) {
  util::Rng rng(seed);
  RandomGraph g;
  const int n = static_cast<int>(rng.UniformInt(5, 24));
  for (int i = 0; i < n; ++i) {
    g.net.AddLandmark(util::kCharlotteCropBox.At(rng.Uniform(0.05, 0.95),
                                                 rng.Uniform(0.05, 0.95)),
                      200.0, 1);
  }
  const int edges = static_cast<int>(rng.UniformInt(n, 4 * n));
  for (int e = 0; e < edges; ++e) {
    const auto a = static_cast<LandmarkId>(rng.Index(n));
    auto b = static_cast<LandmarkId>(rng.Index(n));
    if (a == b) continue;
    g.net.AddSegment(a, b, rng.Uniform(5.0, 30.0),
                     rng.Uniform(100.0, 5000.0));
  }
  g.cond = NetworkCondition(g.net.num_segments());
  for (const RoadSegment& seg : g.net.segments()) {
    if (rng.Bernoulli(0.15)) {
      g.cond.Close(seg.id);
    } else if (rng.Bernoulli(0.3)) {
      g.cond.SetSpeedFactor(seg.id, rng.Uniform(0.2, 1.0));
    }
  }
  return g;
}

/// Bellman-Ford reference (O(V*E), handles any non-negative weights).
std::vector<double> BellmanFord(const RoadNetwork& net,
                                const NetworkCondition& cond,
                                LandmarkId source) {
  std::vector<double> dist(net.num_landmarks(), kInf);
  dist[source] = 0.0;
  for (std::size_t iter = 0; iter < net.num_landmarks(); ++iter) {
    bool changed = false;
    for (const RoadSegment& seg : net.segments()) {
      const double w = cond.TravelTime(seg);
      if (w == kInf || dist[seg.from] == kInf) continue;
      if (dist[seg.from] + w < dist[seg.to] - 1e-12) {
        dist[seg.to] = dist[seg.from] + w;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

class RouterPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterPropertyTest, TreeMatchesBellmanFord) {
  const RandomGraph g = MakeRandomGraph(GetParam());
  Router router(g.net);
  util::Rng rng(GetParam() ^ 0xF00D);
  const auto source = static_cast<LandmarkId>(rng.Index(g.net.num_landmarks()));
  const ShortestPathTree tree = router.Tree(source, g.cond);
  const std::vector<double> reference = BellmanFord(g.net, g.cond, source);
  for (std::size_t v = 0; v < g.net.num_landmarks(); ++v) {
    if (reference[v] == kInf) {
      EXPECT_FALSE(tree.Reachable(static_cast<LandmarkId>(v)));
    } else {
      ASSERT_TRUE(tree.Reachable(static_cast<LandmarkId>(v)));
      EXPECT_NEAR(tree.time_s[v], reference[v], 1e-6);
    }
  }
}

TEST_P(RouterPropertyTest, ReverseTreeMatchesForward) {
  const RandomGraph g = MakeRandomGraph(GetParam());
  Router router(g.net);
  util::Rng rng(GetParam() ^ 0xBEEF);
  const auto target = static_cast<LandmarkId>(rng.Index(g.net.num_landmarks()));
  const ShortestPathTree rtree = router.ReverseTree(target, g.cond);
  for (std::size_t v = 0; v < g.net.num_landmarks(); ++v) {
    const double forward =
        router.TravelTime(static_cast<LandmarkId>(v), target, g.cond);
    if (forward == kInf) {
      EXPECT_FALSE(rtree.Reachable(static_cast<LandmarkId>(v)));
    } else {
      ASSERT_TRUE(rtree.Reachable(static_cast<LandmarkId>(v)));
      EXPECT_NEAR(rtree.time_s[v], forward, 1e-6);
    }
  }
}

TEST_P(RouterPropertyTest, ExtractedRouteIsConsistent) {
  const RandomGraph g = MakeRandomGraph(GetParam());
  Router router(g.net);
  util::Rng rng(GetParam() ^ 0xCAFE);
  const auto a = static_cast<LandmarkId>(rng.Index(g.net.num_landmarks()));
  const auto b = static_cast<LandmarkId>(rng.Index(g.net.num_landmarks()));
  const auto route = router.ShortestRoute(a, b, g.cond);
  if (!route.has_value()) return;
  // The route is a connected walk from a to b over open segments whose
  // travel times sum to the reported total.
  LandmarkId cur = a;
  double total = 0.0;
  for (SegmentId sid : route->segments) {
    const RoadSegment& seg = g.net.segment(sid);
    ASSERT_EQ(seg.from, cur);
    ASSERT_TRUE(g.cond.IsOpen(sid));
    total += g.cond.TravelTime(seg);
    cur = seg.to;
  }
  EXPECT_EQ(cur, b);
  EXPECT_NEAR(total, route->travel_time_s, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mobirescue::roadnet
