// Property tests: rescue-simulator invariants under randomized request
// streams and a randomized dispatcher, parameterized over seeds.
#include <gtest/gtest.h>

#include "dispatch/simple_dispatchers.hpp"
#include "sim/simulator.hpp"
#include "weather/scenario.hpp"

namespace mobirescue::sim {
namespace {

struct PropertyWorld {
  roadnet::City city;
  std::unique_ptr<weather::WeatherField> field;
  std::unique_ptr<weather::FloodModel> flood;
};

PropertyWorld& SharedWorld() {
  static PropertyWorld world = [] {
    PropertyWorld w;
    roadnet::CityConfig config;
    config.grid_width = 10;
    config.grid_height = 10;
    config.num_hospitals = 4;
    w.city = roadnet::BuildCity(config);
    // A storm overlapping the simulated day, so conditions change mid-run.
    weather::ScenarioSpec spec = weather::FlorenceScenario();
    spec.storm.storm_begin_s = 0.2 * util::kSecondsPerDay;
    spec.storm.storm_peak_s = 0.5 * util::kSecondsPerDay;
    spec.storm.storm_end_s = 1.2 * util::kSecondsPerDay;
    w.field = std::make_unique<weather::WeatherField>(w.city.box, spec.storm);
    w.flood = std::make_unique<weather::FloodModel>(*w.field, w.city.terrain);
    return w;
  }();
  return world;
}

std::vector<Request> RandomRequests(const roadnet::City& city,
                                    std::uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<Request> out;
  for (int i = 0; i < count; ++i) {
    Request r;
    r.id = i;
    r.appear_time = rng.Uniform(0.0, 20.0 * 3600.0);
    r.segment =
        static_cast<roadnet::SegmentId>(rng.Index(city.network.num_segments()));
    r.pos = city.network.SegmentMidpoint(r.segment);
    r.region = city.network.segment(r.segment).region;
    out.push_back(r);
  }
  return out;
}

class SimulatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimulatorPropertyTest, InvariantsHoldUnderRandomDispatch) {
  PropertyWorld& w = SharedWorld();
  SimConfig config;
  config.num_teams = 8;
  config.horizon_s = util::kSecondsPerDay;
  config.seed = GetParam();
  auto requests = RandomRequests(w.city, GetParam() * 31 + 7, 40);

  RescueSimulator sim(w.city, *w.flood, requests, 0.0, config);
  dispatch::RandomDispatcher dispatcher(w.city, GetParam());
  const MetricsCollector metrics = sim.Run(dispatcher);

  // 1. Each request's lifecycle timestamps are ordered, and every served
  //    request names a real team.
  int on_board = 0, delivered = 0, pending = 0, future = 0;
  for (const Request& r : sim.requests()) {
    switch (r.status) {
      case RequestStatus::kFuture:
        ++future;
        break;
      case RequestStatus::kPending:
        ++pending;
        EXPECT_LT(r.appear_time, config.horizon_s);
        break;
      case RequestStatus::kOnBoard:
        ++on_board;
        break;
      case RequestStatus::kDelivered:
        ++delivered;
        EXPECT_GE(r.delivery_time, r.pickup_time);
        break;
    }
    if (r.status == RequestStatus::kOnBoard ||
        r.status == RequestStatus::kDelivered) {
      EXPECT_GE(r.pickup_time, r.appear_time - 1e-9);
      EXPECT_GE(r.served_by_team, 0);
      EXPECT_LT(r.served_by_team, config.num_teams);
      EXPECT_GE(r.driving_delay_s, 0.0);
    }
  }
  EXPECT_EQ(future, 0);  // every request appeared within the horizon

  // 2. Metrics agree with request states.
  EXPECT_EQ(metrics.total_served(), on_board + delivered);
  EXPECT_EQ(metrics.total_delivered(), delivered);
  EXPECT_LE(metrics.total_timely(), metrics.total_served());

  // 3. Teams never exceed capacity, and every onboard id is a real onboard
  //    request owned by exactly one team.
  std::vector<int> owner(requests.size(), -1);
  int onboard_total = 0;
  for (const Team& team : sim.teams()) {
    EXPECT_LE(static_cast<int>(team.onboard.size()), team.capacity);
    for (int rid : team.onboard) {
      ASSERT_GE(rid, 0);
      ASSERT_LT(static_cast<std::size_t>(rid), requests.size());
      EXPECT_EQ(owner[rid], -1) << "request carried by two teams";
      owner[rid] = team.id;
      EXPECT_EQ(sim.requests()[rid].status, RequestStatus::kOnBoard);
      EXPECT_EQ(sim.requests()[rid].served_by_team, team.id);
      ++onboard_total;
    }
  }
  EXPECT_EQ(onboard_total, on_board);

  // 4. Per-team served counts in metrics match the teams' own counters.
  const auto per_team = metrics.ServedPerTeam(config.num_teams);
  for (const Team& team : sim.teams()) {
    EXPECT_EQ(per_team[team.id], team.served_total);
  }
}

TEST_P(SimulatorPropertyTest, GreedyNearestServesAtLeastAsManyAsNoop) {
  PropertyWorld& w = SharedWorld();
  SimConfig config;
  config.num_teams = 8;
  config.horizon_s = util::kSecondsPerDay;
  config.seed = GetParam();
  auto requests = RandomRequests(w.city, GetParam() * 13 + 3, 30);

  RescueSimulator greedy_sim(w.city, *w.flood, requests, 0.0, config);
  dispatch::GreedyNearestDispatcher greedy(w.city);
  const int greedy_served = greedy_sim.Run(greedy).total_served();

  // A dispatcher that never assigns anything: only co-located instant
  // pickups can happen.
  class Noop : public Dispatcher {
   public:
    std::string name() const override { return "noop"; }
    DispatchDecision Decide(const DispatchContext& context) override {
      DispatchDecision d;
      d.actions.resize(context.teams.size());
      return d;
    }
  } noop;
  RescueSimulator noop_sim(w.city, *w.flood, requests, 0.0, config);
  const int noop_served = noop_sim.Run(noop).total_served();

  EXPECT_GE(greedy_served, noop_served);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mobirescue::sim
