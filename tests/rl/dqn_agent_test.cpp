#include "rl/dqn_agent.hpp"

#include <gtest/gtest.h>

namespace mobirescue::rl {
namespace {

DqnConfig SmallConfig() {
  DqnConfig config;
  config.feature_dim = 3;
  config.hidden = {16};
  config.batch_size = 16;
  config.buffer_capacity = 1000;
  config.epsilon_decay_steps = 100;
  config.learning_rate = 5e-3;
  return config;
}

TEST(DqnAgentTest, EpsilonAnneals) {
  DqnAgent agent(SmallConfig());
  EXPECT_NEAR(agent.CurrentEpsilon(), agent.config().epsilon_start, 1e-9);
  std::vector<std::vector<double>> candidates = {{0, 0, 0}, {1, 1, 1}};
  for (int i = 0; i < 200; ++i) agent.SelectAction(candidates, true);
  EXPECT_NEAR(agent.CurrentEpsilon(), agent.config().epsilon_end, 1e-9);
}

TEST(DqnAgentTest, GreedySelectionIsArgmaxQ) {
  DqnAgent agent(SmallConfig());
  std::vector<std::vector<double>> candidates = {
      {0.1, 0.2, 0.3}, {0.9, -0.5, 0.4}, {-1.0, 1.0, 0.0}};
  const std::size_t chosen = agent.SelectAction(candidates, false);
  double best = -1e300;
  std::size_t expect = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double q = agent.QValue(candidates[i]);
    if (q > best) {
      best = q;
      expect = i;
    }
  }
  EXPECT_EQ(chosen, expect);
}

TEST(DqnAgentTest, EmptyCandidatesThrow) {
  DqnAgent agent(SmallConfig());
  EXPECT_THROW(agent.SelectAction({}, false), std::invalid_argument);
}

TEST(DqnAgentTest, TrainStepNoopUntilBufferFilled) {
  DqnAgent agent(SmallConfig());
  EXPECT_DOUBLE_EQ(agent.TrainStep(), 0.0);
  EXPECT_EQ(agent.train_steps(), 0u);
}

TEST(DqnAgentTest, LearnsBanditRewards) {
  // Contextual bandit: terminal transitions, feature x -> reward 2x.
  // After training, Q must rank a high-feature action above a low one.
  DqnConfig config = SmallConfig();
  config.gamma = 0.0;
  DqnAgent agent(config);
  util::Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(-1, 1);
    Transition t;
    t.features = {x, 0.0, 1.0};
    t.reward = 2.0 * x;
    t.terminal = true;
    agent.Push(std::move(t));
  }
  for (int i = 0; i < 800; ++i) agent.TrainStep();
  EXPECT_GT(agent.QValue(std::vector<double>{0.9, 0.0, 1.0}),
            agent.QValue(std::vector<double>{-0.9, 0.0, 1.0}));
  EXPECT_NEAR(agent.QValue(std::vector<double>{0.5, 0.0, 1.0}), 1.0, 0.35);
}

TEST(DqnAgentTest, BootstrapUsesDiscountedNextValue) {
  // One-step chain: s0 (reward 0) -> s1 with known terminal reward 1.
  // With gamma=0.5, Q(s0) should approach ~0.5 * Q(s1) ~ 0.5.
  DqnConfig config = SmallConfig();
  config.gamma = 0.5;
  config.target_sync_every = 25;
  DqnAgent agent(config);
  for (int i = 0; i < 200; ++i) {
    Transition terminal;
    terminal.features = {1.0, 0.0, 0.0};
    terminal.reward = 1.0;
    terminal.terminal = true;
    agent.Push(std::move(terminal));

    Transition chain;
    chain.features = {0.0, 1.0, 0.0};
    chain.reward = 0.0;
    chain.next_candidates = {{1.0, 0.0, 0.0}};
    chain.duration_rounds = 1;
    agent.Push(std::move(chain));
  }
  for (int i = 0; i < 1500; ++i) agent.TrainStep();
  EXPECT_NEAR(agent.QValue(std::vector<double>{1.0, 0.0, 0.0}), 1.0, 0.3);
  EXPECT_NEAR(agent.QValue(std::vector<double>{0.0, 1.0, 0.0}), 0.5, 0.3);
}

TEST(DqnAgentTest, DurationDiscountsMore) {
  // Same chain but the macro action lasts 4 rounds: gamma^4 = 0.0625.
  DqnConfig config = SmallConfig();
  config.gamma = 0.5;
  config.target_sync_every = 25;
  DqnAgent agent(config);
  for (int i = 0; i < 200; ++i) {
    Transition terminal;
    terminal.features = {1.0, 0.0, 0.0};
    terminal.reward = 1.0;
    terminal.terminal = true;
    agent.Push(std::move(terminal));

    Transition slow;
    slow.features = {0.0, 0.0, 1.0};
    slow.reward = 0.0;
    slow.next_candidates = {{1.0, 0.0, 0.0}};
    slow.duration_rounds = 4;
    agent.Push(std::move(slow));
  }
  for (int i = 0; i < 1500; ++i) agent.TrainStep();
  EXPECT_LT(agent.QValue(std::vector<double>{0.0, 0.0, 1.0}), 0.35);
}

TEST(DqnAgentTest, SaveLoadWeightsRoundTrip) {
  DqnAgent a(SmallConfig());
  DqnConfig other = SmallConfig();
  other.seed = 99;
  DqnAgent b(other);
  const std::vector<double> x = {0.2, -0.4, 0.6};
  EXPECT_NE(a.QValue(x), b.QValue(x));
  b.LoadWeights(a.SaveWeights());
  EXPECT_DOUBLE_EQ(a.QValue(x), b.QValue(x));
}

TEST(DqnAgentTest, ExploreNowAdvancesDecisions) {
  DqnAgent agent(SmallConfig());
  const std::size_t before = agent.decisions_made();
  agent.ExploreNow();
  EXPECT_EQ(agent.decisions_made(), before + 1);
  EXPECT_LT(agent.RandomAction(5), 5u);
}

}  // namespace
}  // namespace mobirescue::rl
