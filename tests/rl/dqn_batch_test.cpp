// Parity and isolation tests for the batched DQN scoring paths: greedy
// SelectAction and MaxTargetQ must match a per-row scalar scan bit for
// bit, MaxTargetQ must reject empty candidate sets instead of flooring at
// 0, and evaluation-time scoring must never perturb a training run.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "rl/dqn_agent.hpp"
#include "util/rng.hpp"

namespace mobirescue::rl {
namespace {

DqnConfig SmallConfig(std::uint64_t seed) {
  DqnConfig config;
  config.feature_dim = 6;
  config.hidden = {16, 16};
  config.seed = seed;
  return config;
}

std::vector<std::vector<double>> RandomCandidates(std::size_t n,
                                                  std::size_t dim,
                                                  util::Rng& rng) {
  std::vector<std::vector<double>> rows(n);
  for (std::vector<double>& row : rows) {
    row.resize(dim);
    for (double& v : row) v = rng.Uniform(-2.0, 2.0);
  }
  return rows;
}

TEST(DqnBatchTest, QValuesMatchPerRowBitwise) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    const DqnAgent agent(SmallConfig(seed));
    util::Rng rng(seed);
    for (const std::size_t n : {1ul, 2ul, 9ul, 40ul}) {
      const auto candidates = RandomCandidates(n, 6, rng);
      const std::vector<double> batched = agent.QValues(candidates);
      ASSERT_EQ(batched.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(batched[i], agent.QValue(candidates[i]))
            << "seed " << seed << " n " << n << " row " << i;
      }
    }
  }
}

TEST(DqnBatchTest, GreedySelectActionMatchesPerRowArgmax) {
  for (const std::uint64_t seed : {5u, 23u}) {
    DqnAgent agent(SmallConfig(seed));
    util::Rng rng(seed + 1);
    for (int round = 0; round < 20; ++round) {
      const auto candidates = RandomCandidates(1 + rng.Index(30), 6, rng);
      // Per-row scalar argmax with strict > (lowest index wins ties).
      std::size_t expected = 0;
      double best = agent.QValue(candidates[0]);
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double q = agent.QValue(candidates[i]);
        if (q > best) {
          best = q;
          expected = i;
        }
      }
      EXPECT_EQ(agent.SelectAction(candidates, /*explore=*/false), expected)
          << "seed " << seed << " round " << round;
    }
  }
}

TEST(DqnBatchTest, GreedySelectActionKeepsLowestIndexOnTies) {
  DqnAgent agent(SmallConfig(7));
  // Identical rows produce identical Q-values; the argmax must stay at 0.
  const std::vector<double> row = {0.5, -0.5, 1.0, 0.0, 0.25, -1.0};
  const std::vector<std::vector<double>> candidates(5, row);
  EXPECT_EQ(agent.SelectAction(candidates, /*explore=*/false), 0u);
}

TEST(DqnBatchTest, MaxTargetQMatchesPerRowMax) {
  // Before any target sync the target net equals the online net, so the
  // per-row reference can go through QValue.
  for (const std::uint64_t seed : {11u, 29u}) {
    const DqnAgent agent(SmallConfig(seed));
    util::Rng rng(seed + 2);
    for (const std::size_t n : {1ul, 3ul, 25ul}) {
      const auto candidates = RandomCandidates(n, 6, rng);
      double expected = agent.QValue(candidates[0]);
      for (std::size_t i = 1; i < n; ++i) {
        expected = std::max(expected, agent.QValue(candidates[i]));
      }
      EXPECT_EQ(agent.MaxTargetQ(candidates), expected)
          << "seed " << seed << " n " << n;
    }
  }
}

TEST(DqnBatchTest, MaxTargetQThrowsOnEmptyCandidates) {
  const DqnAgent agent(SmallConfig(13));
  EXPECT_THROW(agent.MaxTargetQ({}), std::invalid_argument);
}

TEST(DqnBatchTest, SelectActionThrowsOnEmptyCandidates) {
  DqnAgent agent(SmallConfig(13));
  EXPECT_THROW(agent.SelectAction({}, false), std::invalid_argument);
}

TEST(DqnBatchTest, MaxTargetQHandlesAllNegativeQValues) {
  // Regression for the first-flag bug: with every candidate's Q negative, a
  // 0.0-initialised running max would floor the target at 0.
  const DqnAgent agent(SmallConfig(19));
  util::Rng rng(190);
  for (int attempt = 0; attempt < 200; ++attempt) {
    const auto candidates = RandomCandidates(4, 6, rng);
    const std::vector<double> q = agent.QValues(candidates);
    if (std::all_of(q.begin(), q.end(), [](double v) { return v < 0.0; })) {
      const double expected = *std::max_element(q.begin(), q.end());
      EXPECT_EQ(agent.MaxTargetQ(candidates), expected);
      EXPECT_LT(agent.MaxTargetQ(candidates), 0.0);
      return;
    }
  }
  GTEST_SKIP() << "no all-negative candidate set found";
}

Transition MakeTransition(util::Rng& rng, bool terminal) {
  Transition t;
  t.features.resize(6);
  for (double& v : t.features) v = rng.Uniform(-1.0, 1.0);
  t.reward = rng.Uniform(-1.0, 1.0);
  t.terminal = terminal;
  if (!terminal) {
    for (int c = 0; c < 3; ++c) {
      std::vector<double> cand(6);
      for (double& v : cand) v = rng.Uniform(-1.0, 1.0);
      t.next_candidates.push_back(std::move(cand));
    }
  }
  return t;
}

TEST(DqnBatchTest, EvaluationScoringDoesNotPerturbTraining) {
  // Two agents, identical configs and replay contents. One serves heavy
  // evaluation traffic through the const scoring paths between training
  // steps; both must end with bitwise-identical weights (this is what lets
  // RunMethods share the training agent with parallel evaluators).
  DqnAgent trained(SmallConfig(37));
  DqnAgent evaluated(SmallConfig(37));
  util::Rng data_rng(370);
  for (int i = 0; i < 200; ++i) {
    const Transition t = MakeTransition(data_rng, i % 7 == 0);
    trained.Push(t);
    evaluated.Push(t);
  }

  util::Rng probe_rng(371);
  const auto probes = RandomCandidates(32, 6, probe_rng);
  for (int step = 0; step < 30; ++step) {
    // Interleave const evaluation traffic into one agent only.
    (void)evaluated.QValues(probes);
    (void)evaluated.QValue(probes[0]);
    (void)evaluated.MaxTargetQ(probes);
    const double loss_a = trained.TrainStep();
    const double loss_b = evaluated.TrainStep();
    ASSERT_EQ(loss_a, loss_b) << "step " << step;
  }
  const std::vector<double> w_a = trained.SaveWeights();
  const std::vector<double> w_b = evaluated.SaveWeights();
  ASSERT_EQ(w_a.size(), w_b.size());
  for (std::size_t i = 0; i < w_a.size(); ++i) {
    ASSERT_EQ(w_a[i], w_b[i]) << "weight " << i;
  }
}

TEST(DqnBatchTest, ConcurrentQScoringReadersAgree) {
  // Const batched scoring over one shared agent from several threads —
  // the RunMethods sharing model. Runs under the tsan preset via the
  // suite's `concurrency` label.
  const DqnAgent agent(SmallConfig(53));
  util::Rng rng(530);
  const auto candidates = RandomCandidates(24, 6, rng);
  const std::vector<double> expected = agent.QValues(candidates);

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int rep = 0; rep < 50; ++rep) {
          results[t] = agent.QValues(candidates);
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace mobirescue::rl
