#include "rl/replay_buffer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mobirescue::rl {
namespace {

Transition Make(double reward) {
  Transition t;
  t.features = {reward};
  t.reward = reward;
  return t;
}

TEST(ReplayBufferTest, GrowsUntilCapacity) {
  ReplayBuffer buffer(3);
  EXPECT_TRUE(buffer.empty());
  buffer.Push(Make(1));
  buffer.Push(Make(2));
  EXPECT_EQ(buffer.size(), 2u);
  buffer.Push(Make(3));
  buffer.Push(Make(4));  // overwrites the oldest
  EXPECT_EQ(buffer.size(), 3u);
}

TEST(ReplayBufferTest, RingOverwritesOldestFirst) {
  ReplayBuffer buffer(2);
  buffer.Push(Make(1));
  buffer.Push(Make(2));
  buffer.Push(Make(3));  // should replace reward=1
  util::Rng rng(1);
  bool saw1 = false, saw3 = false;
  for (const Transition* t : buffer.Sample(200, rng)) {
    saw1 = saw1 || t->reward == 1.0;
    saw3 = saw3 || t->reward == 3.0;
  }
  EXPECT_FALSE(saw1);
  EXPECT_TRUE(saw3);
}

TEST(ReplayBufferTest, SampleFromEmptyIsEmpty) {
  ReplayBuffer buffer(4);
  util::Rng rng(2);
  EXPECT_TRUE(buffer.Sample(10, rng).empty());
}

TEST(ReplayBufferTest, SampleSizeAndMembership) {
  ReplayBuffer buffer(10);
  for (int i = 0; i < 5; ++i) buffer.Push(Make(i));
  util::Rng rng(3);
  const auto sample = buffer.Sample(32, rng);
  EXPECT_EQ(sample.size(), 32u);
  for (const Transition* t : sample) {
    EXPECT_GE(t->reward, 0.0);
    EXPECT_LT(t->reward, 5.0);
  }
}

TEST(ReplayBufferTest, SampleWithoutReplacementWhenBufferSuffices) {
  // Regression: sampling used to draw with replacement even when the batch
  // fit inside the buffer, so a small early-training buffer could fill a
  // minibatch with many copies of one transition.
  ReplayBuffer buffer(16);
  for (int i = 0; i < 10; ++i) buffer.Push(Make(i));
  util::Rng rng(7);
  const auto sample = buffer.Sample(10, rng);
  ASSERT_EQ(sample.size(), 10u);
  std::set<const Transition*> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);  // every stored transition exactly once

  util::Rng rng2(8);
  const auto partial = buffer.Sample(6, rng2);
  ASSERT_EQ(partial.size(), 6u);
  std::set<const Transition*> partial_distinct(partial.begin(), partial.end());
  EXPECT_EQ(partial_distinct.size(), 6u);
}

TEST(ReplayBufferTest, OversizedSampleStillFallsBackToReplacement) {
  ReplayBuffer buffer(4);
  buffer.Push(Make(1));
  buffer.Push(Make(2));
  util::Rng rng(9);
  const auto sample = buffer.Sample(7, rng);
  EXPECT_EQ(sample.size(), 7u);  // n > size(): duplicates are unavoidable
}

TEST(ReplayBufferTest, StoresFullTransitionPayload) {
  ReplayBuffer buffer(2);
  Transition t;
  t.features = {1, 2, 3};
  t.reward = -0.5;
  t.next_candidates = {{4, 5, 6}, {7, 8, 9}};
  t.terminal = true;
  t.duration_rounds = 7;
  buffer.Push(t);
  util::Rng rng(4);
  const Transition* got = buffer.Sample(1, rng)[0];
  EXPECT_EQ(got->features, (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(got->next_candidates.size(), 2u);
  EXPECT_TRUE(got->terminal);
  EXPECT_EQ(got->duration_rounds, 7);
}

}  // namespace
}  // namespace mobirescue::rl
