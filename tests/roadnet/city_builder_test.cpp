#include "roadnet/city_builder.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "roadnet/router.hpp"

namespace mobirescue::roadnet {
namespace {

CityConfig SmallConfig() {
  CityConfig config;
  config.grid_width = 10;
  config.grid_height = 10;
  config.num_hospitals = 5;
  return config;
}

TEST(RegionMapTest, DowntownIsRegion3) {
  RegionMap map(util::kCharlotteCropBox);
  EXPECT_EQ(map.RegionOf(util::kCharlotteCropBox.Center()), kDowntownRegion);
}

TEST(RegionMapTest, CoversAllSevenRegions) {
  RegionMap map(util::kCharlotteCropBox);
  std::set<RegionId> seen;
  for (double x = 0.05; x < 1.0; x += 0.05) {
    for (double y = 0.05; y < 1.0; y += 0.05) {
      const RegionId r = map.RegionOf(util::kCharlotteCropBox.At(x, y));
      EXPECT_GE(r, 1);
      EXPECT_LE(r, kNumRegions);
      seen.insert(r);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumRegions));
}

TEST(RegionMapTest, CentroidLandsInOwnRegion) {
  RegionMap map(util::kCharlotteCropBox);
  for (RegionId r = 1; r <= kNumRegions; ++r) {
    EXPECT_EQ(map.RegionOf(map.RegionCentroid(r)), r) << "region " << r;
  }
  EXPECT_THROW(map.RegionCentroid(99), std::invalid_argument);
}

TEST(TerrainModelTest, NorthWestHigherThanSouthEast) {
  TerrainModel terrain(util::kCharlotteCropBox);
  const double nw = terrain.AltitudeAt(util::kCharlotteCropBox.At(0.1, 0.9));
  const double se = terrain.AltitudeAt(util::kCharlotteCropBox.At(0.9, 0.1));
  EXPECT_GT(nw, se);
}

TEST(TerrainModelTest, AltitudesInPlausibleRange) {
  TerrainModel terrain(util::kCharlotteCropBox);
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    for (double y = 0.0; y <= 1.0; y += 0.1) {
      const double a = terrain.AltitudeAt(util::kCharlotteCropBox.At(x, y));
      EXPECT_GT(a, 100.0);
      EXPECT_LT(a, 350.0);
    }
  }
}

TEST(CityBuilderTest, DeterministicForSeed) {
  const City a = BuildCity(SmallConfig());
  const City b = BuildCity(SmallConfig());
  ASSERT_EQ(a.network.num_landmarks(), b.network.num_landmarks());
  ASSERT_EQ(a.network.num_segments(), b.network.num_segments());
  for (std::size_t i = 0; i < a.network.num_landmarks(); ++i) {
    EXPECT_EQ(a.network.landmark(static_cast<LandmarkId>(i)).pos,
              b.network.landmark(static_cast<LandmarkId>(i)).pos);
  }
  EXPECT_EQ(a.hospitals, b.hospitals);
  EXPECT_EQ(a.depot, b.depot);
}

TEST(CityBuilderTest, SizesMatchGrid) {
  const City city = BuildCity(SmallConfig());
  EXPECT_EQ(city.network.num_landmarks(), 100u);
  // Grid edges, mostly two-way: comfortably more segments than landmarks.
  EXPECT_GT(city.network.num_segments(), 250u);
  EXPECT_EQ(city.hospitals.size(), 5u);
}

TEST(CityBuilderTest, LandmarksInsideBox) {
  const City city = BuildCity(SmallConfig());
  for (const Landmark& lm : city.network.landmarks()) {
    EXPECT_TRUE(city.box.Contains(lm.pos));
    EXPECT_GE(lm.region, 1);
    EXPECT_LE(lm.region, kNumRegions);
  }
}

TEST(CityBuilderTest, MostLandmarksMutuallyReachable) {
  const City city = BuildCity(SmallConfig());
  Router router(city.network);
  NetworkCondition cond(city.network.num_segments());
  const ShortestPathTree tree = router.Tree(city.depot, cond);
  std::size_t reachable = 0;
  for (const Landmark& lm : city.network.landmarks()) {
    if (tree.Reachable(lm.id)) ++reachable;
  }
  // The grid core is connected; a tiny number of jitter-isolated corners is
  // tolerated.
  EXPECT_GE(reachable, city.network.num_landmarks() * 95 / 100);
}

TEST(CityBuilderTest, HospitalsAreDistinctValidLandmarks) {
  const City city = BuildCity(SmallConfig());
  std::set<LandmarkId> unique(city.hospitals.begin(), city.hospitals.end());
  EXPECT_EQ(unique.size(), city.hospitals.size());
  for (LandmarkId h : city.hospitals) {
    EXPECT_GE(h, 0);
    EXPECT_LT(static_cast<std::size_t>(h), city.network.num_landmarks());
  }
}

TEST(CityBuilderTest, DepotOnHighGround) {
  const City city = BuildCity(SmallConfig());
  // The staging depot must sit well above the basin floor.
  EXPECT_GT(city.network.landmark(city.depot).altitude_m, 200.0);
}

TEST(CityBuilderTest, RejectsTinyGrid) {
  CityConfig config;
  config.grid_width = 1;
  EXPECT_THROW(BuildCity(config), std::invalid_argument);
}

}  // namespace
}  // namespace mobirescue::roadnet
