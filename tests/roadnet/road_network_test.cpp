#include "roadnet/road_network.hpp"

#include <gtest/gtest.h>

namespace mobirescue::roadnet {
namespace {

RoadNetwork MakeTriangle() {
  RoadNetwork net;
  const LandmarkId a = net.AddLandmark({35.70, -79.00}, 200.0, 1);
  const LandmarkId b = net.AddLandmark({35.70, -78.95}, 210.0, 1);
  const LandmarkId c = net.AddLandmark({35.74, -78.975}, 220.0, 2);
  net.AddTwoWaySegment(a, b, 15.0);
  net.AddTwoWaySegment(b, c, 15.0);
  net.AddTwoWaySegment(c, a, 15.0);
  return net;
}

TEST(RoadNetworkTest, AddLandmarkAssignsSequentialIds) {
  RoadNetwork net;
  EXPECT_EQ(net.AddLandmark({35.7, -79.0}, 100.0, 1), 0);
  EXPECT_EQ(net.AddLandmark({35.8, -79.0}, 100.0, 2), 1);
  EXPECT_EQ(net.num_landmarks(), 2u);
  EXPECT_EQ(net.landmark(1).region, 2);
}

TEST(RoadNetworkTest, SegmentLengthDefaultsToGreatCircle) {
  RoadNetwork net;
  const LandmarkId a = net.AddLandmark({35.70, -79.00}, 0, 1);
  const LandmarkId b = net.AddLandmark({35.70, -78.95}, 0, 1);
  const SegmentId s = net.AddSegment(a, b, 10.0);
  EXPECT_NEAR(net.segment(s).length_m,
              util::HaversineMeters(net.landmark(a).pos, net.landmark(b).pos),
              1e-6);
}

TEST(RoadNetworkTest, ExplicitLengthRespected) {
  RoadNetwork net;
  const LandmarkId a = net.AddLandmark({35.70, -79.00}, 0, 1);
  const LandmarkId b = net.AddLandmark({35.70, -78.95}, 0, 1);
  const SegmentId s = net.AddSegment(a, b, 10.0, 1234.0);
  EXPECT_DOUBLE_EQ(net.segment(s).length_m, 1234.0);
  EXPECT_NEAR(net.segment(s).FreeFlowTravelTime(), 123.4, 1e-9);
}

TEST(RoadNetworkTest, RejectsInvalidSegments) {
  RoadNetwork net;
  const LandmarkId a = net.AddLandmark({35.7, -79.0}, 0, 1);
  EXPECT_THROW(net.AddSegment(a, a, 10.0), std::invalid_argument);
  EXPECT_THROW(net.AddSegment(a, 99, 10.0), std::out_of_range);
  const LandmarkId b = net.AddLandmark({35.8, -79.0}, 0, 1);
  EXPECT_THROW(net.AddSegment(a, b, 0.0), std::invalid_argument);
}

TEST(RoadNetworkTest, AdjacencyListsTrackDirections) {
  RoadNetwork net = MakeTriangle();
  // Two-way triangle: every landmark has 2 out and 2 in segments.
  for (LandmarkId id = 0; id < 3; ++id) {
    EXPECT_EQ(net.OutSegments(id).size(), 2u);
    EXPECT_EQ(net.InSegments(id).size(), 2u);
  }
  for (const RoadSegment& seg : net.segments()) {
    bool found = false;
    for (SegmentId sid : net.OutSegments(seg.from)) {
      if (sid == seg.id) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(RoadNetworkTest, SegmentRegionFollowsOrigin) {
  RoadNetwork net = MakeTriangle();
  for (const RoadSegment& seg : net.segments()) {
    EXPECT_EQ(seg.region, net.landmark(seg.from).region);
  }
}

TEST(RoadNetworkTest, SegmentMidpointAndAltitude) {
  RoadNetwork net = MakeTriangle();
  const RoadSegment& seg = net.segment(0);
  const util::GeoPoint mid = net.SegmentMidpoint(seg.id);
  EXPECT_NEAR(mid.lat,
              (net.landmark(seg.from).pos.lat + net.landmark(seg.to).pos.lat) / 2,
              1e-12);
  EXPECT_NEAR(net.SegmentAltitude(seg.id),
              (net.landmark(seg.from).altitude_m +
               net.landmark(seg.to).altitude_m) / 2,
              1e-12);
}

TEST(RoadNetworkTest, NearestLandmark) {
  RoadNetwork net = MakeTriangle();
  EXPECT_EQ(net.NearestLandmark({35.701, -79.001}), 0);
  EXPECT_EQ(net.NearestLandmark({35.74, -78.974}), 2);
}

TEST(RoadNetworkTest, SegmentsInRegion) {
  RoadNetwork net = MakeTriangle();
  const auto region1 = net.SegmentsInRegion(1);
  const auto region2 = net.SegmentsInRegion(2);
  EXPECT_EQ(region1.size() + region2.size(), net.num_segments());
  EXPECT_TRUE(net.SegmentsInRegion(5).empty());
}

TEST(NetworkConditionTest, DefaultsOpenFullSpeed) {
  NetworkCondition cond(4);
  EXPECT_EQ(cond.NumOpen(), 4u);
  EXPECT_DOUBLE_EQ(cond.SpeedFactor(2), 1.0);
}

TEST(NetworkConditionTest, CloseAndReopen) {
  NetworkCondition cond(4);
  cond.Close(1);
  EXPECT_FALSE(cond.IsOpen(1));
  EXPECT_EQ(cond.NumOpen(), 3u);
  cond.Open(1);
  EXPECT_TRUE(cond.IsOpen(1));
}

TEST(NetworkConditionTest, TravelTimeReflectsCondition) {
  RoadNetwork net = MakeTriangle();
  NetworkCondition cond(net.num_segments());
  const RoadSegment& seg = net.segment(0);
  const double free = cond.TravelTime(seg);
  EXPECT_NEAR(free, seg.length_m / seg.speed_limit_mps, 1e-9);
  cond.SetSpeedFactor(0, 0.5);
  EXPECT_NEAR(cond.TravelTime(seg), 2.0 * free, 1e-9);
  cond.Close(0);
  EXPECT_TRUE(std::isinf(cond.TravelTime(seg)));
}

TEST(NetworkConditionTest, RejectsBadSpeedFactor) {
  NetworkCondition cond(2);
  EXPECT_THROW(cond.SetSpeedFactor(0, 0.0), std::invalid_argument);
  EXPECT_THROW(cond.SetSpeedFactor(0, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace mobirescue::roadnet
