// The router's shortest-path-tree cache: version-stamp keying, hit/miss
// accounting, and invalidation when the network condition changes (the
// hour-to-hour flood epochs of the simulator).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "roadnet/router.hpp"

namespace mobirescue::roadnet {
namespace {

/// Same 1x3 line as router_test: 0 -- 1 -- 2 plus a slow direct shortcut.
class RouterCacheTest : public ::testing::Test {
 protected:
  RouterCacheTest() {
    a_ = net_.AddLandmark({35.70, -79.00}, 200, 1);
    b_ = net_.AddLandmark({35.70, -78.95}, 200, 1);
    c_ = net_.AddLandmark({35.70, -78.90}, 200, 1);
    ab_ = net_.AddSegment(a_, b_, 10.0, 1000.0);
    ba_ = net_.AddSegment(b_, a_, 10.0, 1000.0);
    bc_ = net_.AddSegment(b_, c_, 10.0, 1000.0);
    cb_ = net_.AddSegment(c_, b_, 10.0, 1000.0);
    ac_ = net_.AddSegment(a_, c_, 10.0, 9000.0);
  }

  RoadNetwork net_;
  LandmarkId a_, b_, c_;
  SegmentId ab_, ba_, bc_, cb_, ac_;
};

TEST_F(RouterCacheTest, SecondFetchHitsAndSharesTheTree) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  const auto first = router.CachedTree(a_, cond);
  EXPECT_EQ(router.cache_stats().hits, 0u);
  EXPECT_EQ(router.cache_stats().misses, 1u);
  const auto second = router.CachedTree(a_, cond);
  EXPECT_EQ(router.cache_stats().hits, 1u);
  EXPECT_EQ(router.cache_stats().misses, 1u);
  EXPECT_EQ(first.get(), second.get());  // same immutable tree, shared
  EXPECT_EQ(router.cache_entries(), 1u);
  EXPECT_DOUBLE_EQ(router.cache_stats().HitRate(), 0.5);
}

TEST_F(RouterCacheTest, CachedTreeMatchesUncached) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  cond.Close(ab_);
  const ShortestPathTree plain = router.Tree(a_, cond);
  const auto cached = router.CachedTree(a_, cond);
  EXPECT_EQ(cached->source, plain.source);
  EXPECT_EQ(cached->time_s, plain.time_s);
  EXPECT_EQ(cached->parent_seg, plain.parent_seg);

  const ShortestPathTree rplain = router.ReverseTree(c_, cond);
  const auto rcached = router.CachedReverseTree(c_, cond);
  EXPECT_EQ(rcached->time_s, rplain.time_s);
}

TEST_F(RouterCacheTest, ForwardAndReverseAreDistinctEntries) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  const auto fwd = router.CachedTree(b_, cond);
  const auto rev = router.CachedReverseTree(b_, cond);
  EXPECT_NE(fwd.get(), rev.get());
  EXPECT_EQ(router.cache_entries(), 2u);
  EXPECT_EQ(router.cache_stats().misses, 2u);
}

TEST_F(RouterCacheTest, MutationInvalidatesTheStamp) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  const auto before = router.CachedTree(a_, cond);
  EXPECT_NEAR(before->time_s[c_], 200.0, 1e-9);

  cond.Close(ab_);  // new version stamp: the cached tree must not be reused
  const auto after = router.CachedTree(a_, cond);
  EXPECT_NE(before.get(), after.get());
  EXPECT_NEAR(after->time_s[c_], 900.0, 1e-9);  // detour via the shortcut
  EXPECT_EQ(router.cache_stats().misses, 2u);

  cond.Open(ab_);  // reopening re-stamps again — no stale closed-tree reuse
  const auto reopened = router.CachedTree(a_, cond);
  EXPECT_NE(after.get(), reopened.get());
  EXPECT_NEAR(reopened->time_s[c_], 200.0, 1e-9);
}

TEST_F(RouterCacheTest, SpeedFactorAlsoInvalidates) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  const auto before = router.CachedTree(a_, cond);
  cond.SetSpeedFactor(ab_, 0.1);
  cond.SetSpeedFactor(bc_, 0.1);
  const auto after = router.CachedTree(a_, cond);
  EXPECT_NE(before.get(), after.get());
  EXPECT_NEAR(after->time_s[c_], 900.0, 1e-9);  // slow path loses now
}

TEST_F(RouterCacheTest, CopySharesTheStampUntilMutated) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  cond.Close(ac_);
  const auto original = router.CachedTree(a_, cond);

  NetworkCondition copy = cond;  // identical content, identical stamp
  EXPECT_EQ(copy.version(), cond.version());
  const auto from_copy = router.CachedTree(a_, copy);
  EXPECT_EQ(original.get(), from_copy.get());
  EXPECT_EQ(router.cache_stats().hits, 1u);

  copy.Open(ac_);  // the copy diverges: fresh stamp, fresh tree
  EXPECT_NE(copy.version(), cond.version());
  const auto diverged = router.CachedTree(a_, copy);
  EXPECT_NE(original.get(), diverged.get());
}

TEST_F(RouterCacheTest, HourToHourEpochsGetTheirOwnEntries) {
  // The simulator materialises one NetworkCondition per flood hour and asks
  // for the same trees many times within that hour. Emulate three hourly
  // epochs with worsening flooding: within an epoch everything after the
  // first query hits; across epochs nothing is wrongly reused.
  Router router(net_);
  double prev_time_to_c = -1.0;
  for (int hour = 0; hour < 3; ++hour) {
    NetworkCondition cond(net_.num_segments());  // fresh epoch, fresh stamp
    if (hour >= 1) cond.SetSpeedFactor(ab_, 0.5);
    if (hour >= 2) cond.Close(ab_);

    const auto stats_before = router.cache_stats();
    const auto first = router.CachedTree(a_, cond);
    EXPECT_EQ(router.cache_stats().misses, stats_before.misses + 1);
    for (int repeat = 0; repeat < 5; ++repeat) {
      EXPECT_EQ(router.CachedTree(a_, cond).get(), first.get());
    }
    EXPECT_EQ(router.cache_stats().hits, stats_before.hits + 5);

    EXPECT_NE(first->time_s[c_], prev_time_to_c);  // epochs really differ
    prev_time_to_c = first->time_s[c_];
  }
  EXPECT_EQ(router.cache_entries(), 3u);
}

TEST_F(RouterCacheTest, ConcurrentReadersAgreeAndAccountEveryQuery) {
  // Many threads hammering the same two keys: all of them must see correct
  // trees, every query must be counted, and first-insert-wins keeps the
  // entry count at two. Run under the tsan preset to check for races.
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        if (std::abs(router.CachedTree(a_, cond)->time_s[c_] - 200.0) > 1e-9 ||
            std::abs(router.CachedReverseTree(c_, cond)->time_s[a_] - 200.0) >
                1e-9) {
          ok = false;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  const RouterCacheStats stats = router.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 2u * kThreads * kIters);
  EXPECT_EQ(router.cache_entries(), 2u);
}

TEST_F(RouterCacheTest, ClearCacheDropsEntriesKeepsCounters) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  router.CachedTree(a_, cond);
  router.CachedTree(a_, cond);
  router.ClearCache();
  EXPECT_EQ(router.cache_entries(), 0u);
  EXPECT_EQ(router.cache_stats().hits, 1u);  // cumulative
  router.CachedTree(a_, cond);  // recomputed after the wipe
  EXPECT_EQ(router.cache_stats().misses, 2u);
}

}  // namespace
}  // namespace mobirescue::roadnet
