#include "roadnet/router.hpp"

#include <gtest/gtest.h>

namespace mobirescue::roadnet {
namespace {

/// A 1x3 line: 0 -- 1 -- 2 plus a slow long direct 0 -> 2 shortcut.
class RouterTest : public ::testing::Test {
 protected:
  RouterTest() {
    a_ = net_.AddLandmark({35.70, -79.00}, 200, 1);
    b_ = net_.AddLandmark({35.70, -78.95}, 200, 1);
    c_ = net_.AddLandmark({35.70, -78.90}, 200, 1);
    ab_ = net_.AddSegment(a_, b_, 10.0, 1000.0);
    ba_ = net_.AddSegment(b_, a_, 10.0, 1000.0);
    bc_ = net_.AddSegment(b_, c_, 10.0, 1000.0);
    cb_ = net_.AddSegment(c_, b_, 10.0, 1000.0);
    // Direct a -> c but slow: 9000 m at 10 m/s = 900 s vs 200 s via b.
    ac_ = net_.AddSegment(a_, c_, 10.0, 9000.0);
  }

  RoadNetwork net_;
  LandmarkId a_, b_, c_;
  SegmentId ab_, ba_, bc_, cb_, ac_;
};

TEST_F(RouterTest, ShortestRoutePrefersFastPath) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  const auto route = router.ShortestRoute(a_, c_, cond);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->segments, (std::vector<SegmentId>{ab_, bc_}));
  EXPECT_NEAR(route->travel_time_s, 200.0, 1e-9);
  EXPECT_NEAR(route->length_m, 2000.0, 1e-9);
}

TEST_F(RouterTest, ClosedSegmentForcesDetour) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  cond.Close(ab_);
  const auto route = router.ShortestRoute(a_, c_, cond);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->segments, (std::vector<SegmentId>{ac_}));
  EXPECT_NEAR(route->travel_time_s, 900.0, 1e-9);
}

TEST_F(RouterTest, SpeedFactorChangesChoice) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  // Slow both legs of the fast path by 10x: 2000 s > 900 s direct.
  cond.SetSpeedFactor(ab_, 0.1);
  cond.SetSpeedFactor(bc_, 0.1);
  const auto route = router.ShortestRoute(a_, c_, cond);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->segments, (std::vector<SegmentId>{ac_}));
}

TEST_F(RouterTest, UnreachableReturnsNullopt) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  cond.Close(ab_);
  cond.Close(ac_);
  EXPECT_FALSE(router.ShortestRoute(a_, c_, cond).has_value());
  EXPECT_TRUE(std::isinf(router.TravelTime(a_, c_, cond)));
}

TEST_F(RouterTest, RouteToSelfIsEmpty) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  const auto route = router.ShortestRoute(a_, a_, cond);
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->empty());
  EXPECT_DOUBLE_EQ(route->travel_time_s, 0.0);
}

TEST_F(RouterTest, TreeCoversAllReachable) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  const ShortestPathTree tree = router.Tree(a_, cond);
  EXPECT_TRUE(tree.Reachable(a_));
  EXPECT_TRUE(tree.Reachable(b_));
  EXPECT_TRUE(tree.Reachable(c_));
  EXPECT_DOUBLE_EQ(tree.time_s[a_], 0.0);
  EXPECT_NEAR(tree.time_s[c_], 200.0, 1e-9);
}

TEST_F(RouterTest, ReverseTreeGivesTimesToTarget) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  const ShortestPathTree rtree = router.ReverseTree(c_, cond);
  EXPECT_NEAR(rtree.time_s[a_], 200.0, 1e-9);
  EXPECT_NEAR(rtree.time_s[b_], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(rtree.time_s[c_], 0.0);
  // Forward and reverse agree for every source.
  for (LandmarkId lm : {a_, b_, c_}) {
    EXPECT_NEAR(rtree.time_s[lm], router.TravelTime(lm, c_, cond), 1e-9);
  }
}

TEST_F(RouterTest, ReverseTreeRespectsDirectionality) {
  // Make a one-way only network: a -> b only.
  RoadNetwork net;
  const LandmarkId a = net.AddLandmark({35.70, -79.00}, 0, 1);
  const LandmarkId b = net.AddLandmark({35.70, -78.95}, 0, 1);
  net.AddSegment(a, b, 10.0, 1000.0);
  Router router(net);
  NetworkCondition cond(net.num_segments());
  const ShortestPathTree to_b = router.ReverseTree(b, cond);
  EXPECT_TRUE(to_b.Reachable(a));
  const ShortestPathTree to_a = router.ReverseTree(a, cond);
  EXPECT_FALSE(to_a.Reachable(b));
}

TEST_F(RouterTest, NearestTargetPicksClosest) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  EXPECT_EQ(router.NearestTarget(a_, {b_, c_}, cond), b_);
  EXPECT_EQ(router.NearestTarget(c_, {a_, b_}, cond), b_);
  EXPECT_EQ(router.NearestTarget(a_, {}, cond), kInvalidLandmark);
}

TEST_F(RouterTest, BadInputsThrow) {
  Router router(net_);
  NetworkCondition cond(net_.num_segments());
  EXPECT_THROW(router.Tree(-1, cond), std::out_of_range);
  EXPECT_THROW(router.Tree(99, cond), std::out_of_range);
  NetworkCondition wrong(1);
  EXPECT_THROW(router.Tree(a_, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace mobirescue::roadnet
