#include "roadnet/spatial_index.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "roadnet/city_builder.hpp"
#include "util/rng.hpp"

namespace mobirescue::roadnet {
namespace {

class SpatialIndexTest : public ::testing::Test {
 protected:
  SpatialIndexTest() {
    CityConfig config;
    config.grid_width = 8;
    config.grid_height = 8;
    config.num_hospitals = 3;
    city_ = BuildCity(config);
    index_ = std::make_unique<SpatialIndex>(city_.network, city_.box, 16);
  }

  /// Reference brute-force nearest segment.
  SegmentId BruteNearest(const util::GeoPoint& p) const {
    SegmentId best = kInvalidSegment;
    double best_d = 1e18;
    for (const RoadSegment& seg : city_.network.segments()) {
      const double d = util::PointToSegmentMeters(
          p, city_.network.landmark(seg.from).pos,
          city_.network.landmark(seg.to).pos);
      if (d < best_d) {
        best_d = d;
        best = seg.id;
      }
    }
    return best;
  }

  double DistTo(SegmentId seg, const util::GeoPoint& p) const {
    return util::PointToSegmentMeters(p, city_.network.landmark(city_.network.segment(seg).from).pos,
                                      city_.network.landmark(city_.network.segment(seg).to).pos);
  }

  City city_;
  std::unique_ptr<SpatialIndex> index_;
};

TEST_F(SpatialIndexTest, MatchesBruteForceDistances) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const util::GeoPoint p =
        city_.box.At(rng.Uniform(0.02, 0.98), rng.Uniform(0.02, 0.98));
    const SegmentId fast = index_->NearestSegment(p);
    const SegmentId brute = BruteNearest(p);
    ASSERT_NE(fast, kInvalidSegment);
    // Ties between parallel two-way twins are fine; distances must match.
    EXPECT_NEAR(DistTo(fast, p), DistTo(brute, p), 1.0)
        << "point " << p.lat << "," << p.lon;
  }
}

TEST_F(SpatialIndexTest, MaxRadiusFiltersFarPoints) {
  // A point at a box corner, radius too small to reach any segment.
  const util::GeoPoint corner = city_.box.At(0.0, 0.0);
  const SegmentId any = index_->NearestSegment(corner);
  ASSERT_NE(any, kInvalidSegment);
  const double d = DistTo(any, corner);
  if (d > 10.0) {
    EXPECT_EQ(index_->NearestSegment(corner, d / 2.0), kInvalidSegment);
  }
  EXPECT_NE(index_->NearestSegment(corner, d * 2.0 + 10.0), kInvalidSegment);
}

TEST_F(SpatialIndexTest, SegmentsNearReturnsNeighbourhood) {
  const util::GeoPoint center = city_.box.Center();
  const auto near = index_->SegmentsNear(center, 3000.0);
  EXPECT_FALSE(near.empty());
  for (SegmentId sid : near) {
    const util::GeoPoint mid = city_.network.SegmentMidpoint(sid);
    EXPECT_LE(util::ApproxDistanceMeters(center, mid), 3000.0 + 1.0);
  }
}

TEST_F(SpatialIndexTest, OutOfBoxQueriesMatchBruteForce) {
  // Queries clamp into the border cells; the ring bound must account for
  // the out-of-box offset or the scan stops too early.
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const util::GeoPoint p =
        city_.box.At(rng.Uniform(-0.6, 1.6), rng.Uniform(-0.6, 1.6));
    const SegmentId fast = index_->NearestSegment(p);
    const SegmentId brute = BruteNearest(p);
    ASSERT_NE(fast, kInvalidSegment);
    EXPECT_NEAR(DistTo(fast, p), DistTo(brute, p), 1.0)
        << "point " << p.lat << "," << p.lon;
  }
}

TEST_F(SpatialIndexTest, BatchedQueriesMatchScalarIdForId) {
  // The SoA path must return the *same segment id* as the scalar reference
  // for every query — not merely an equally-near one — including ties,
  // out-of-box queries, and radius-limited misses.
  util::Rng rng(17);
  for (const double radius : {-1.0, 250.0, 2000.0}) {
    std::vector<util::GeoPoint> pts;
    for (int i = 0; i < 400; ++i) {
      pts.push_back(
          city_.box.At(rng.Uniform(-0.3, 1.3), rng.Uniform(-0.3, 1.3)));
    }
    std::vector<SegmentId> batch(pts.size(), kInvalidSegment);
    index_->NearestSegments(pts.data(), pts.size(), radius, batch.data());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ASSERT_EQ(index_->NearestSegment(pts[i], radius), batch[i])
          << "radius " << radius << " point " << i;
    }
  }
}

TEST_F(SpatialIndexTest, CellMappingIsConsistent) {
  ASSERT_EQ(index_->num_cells(),
            static_cast<std::size_t>(index_->cells_per_side()) *
                index_->cells_per_side());
  for (const RoadSegment& seg : city_.network.segments()) {
    const std::size_t cell =
        index_->CellOf(city_.network.SegmentMidpoint(seg.id));
    EXPECT_EQ(index_->CellOfSegment(seg.id), cell);
    EXPECT_LT(cell, index_->num_cells());
  }
}

TEST(SpatialIndexBoundTest, AnisotropicCellsFindFarRingNearSegment) {
  // Deterministic reproduction of the pre-fix early-termination bug. The
  // box is far wider than tall, so grid cells are ~8.4 km x ~0.14 km. The
  // old ring bound used the cell *diagonal* ((ring-1) * diag - max_half):
  // after finding a same-cell segment 600 m away it stopped at ring 2,
  // because 1 * diag >> 600 m — even though a segment three rings up in
  // the short direction sits only ~420 m away. The fixed bound uses the
  // minimum cell dimension and keeps scanning.
  const util::BoundingBox box{{35.0, -79.0}, {35.01, -78.1}};
  RoadNetwork net;
  const util::GeoPoint p = box.At(0.5, 0.5);

  // Same-cell decoy ~600 m east of p (short segment, horizontal).
  const double deg_per_m_lon = 1.0 / (111320.0 * std::cos(35.0 * 3.14159 / 180.0));
  const LandmarkId a0 =
      net.AddLandmark({p.lat, p.lon + 600.0 * deg_per_m_lon}, 0.0, 1);
  const LandmarkId a1 =
      net.AddLandmark({p.lat, p.lon + 620.0 * deg_per_m_lon}, 0.0, 1);
  const SegmentId decoy = net.AddSegment(a0, a1, 10.0);

  // True nearest ~420 m north of p — three grid rows up.
  const double deg_per_m_lat = 1.0 / 111320.0;
  const LandmarkId b0 =
      net.AddLandmark({p.lat + 417.0 * deg_per_m_lat, p.lon}, 0.0, 1);
  const LandmarkId b1 = net.AddLandmark(
      {p.lat + 417.0 * deg_per_m_lat, p.lon + 20.0 * deg_per_m_lon}, 0.0, 1);
  const SegmentId target = net.AddSegment(b0, b1, 10.0);

  SpatialIndex index(net, box, 8);
  auto dist = [&](SegmentId sid) {
    return util::PointToSegmentMeters(p, net.landmark(net.segment(sid).from).pos,
                                      net.landmark(net.segment(sid).to).pos);
  };
  ASSERT_LT(dist(target), dist(decoy));

  // The old diagonal-based bound would have pruned the scan before ring 3:
  // its ring-2 lower bound already exceeds the decoy distance.
  const double cell_w_m = box.WidthMeters() / 8.0;
  const double cell_h_m = box.HeightMeters() / 8.0;
  const double cell_diag_m = std::hypot(cell_w_m, cell_h_m);
  ASSERT_GT(1.0 * cell_diag_m - 20.0, dist(decoy))
      << "fixture no longer reproduces the pre-fix pruning";

  EXPECT_EQ(index.NearestSegment(p), target);
  SegmentId batched = kInvalidSegment;
  index.NearestSegments(&p, 1, -1.0, &batched);
  EXPECT_EQ(batched, target);
}

TEST_F(SpatialIndexTest, EmptyNetwork) {
  RoadNetwork empty;
  SpatialIndex index(empty, city_.box, 4);
  EXPECT_EQ(index.NearestSegment(city_.box.Center()), kInvalidSegment);
  EXPECT_TRUE(index.SegmentsNear(city_.box.Center(), 1000.0).empty());
}

TEST_F(SpatialIndexTest, RejectsBadCellCount) {
  EXPECT_THROW(SpatialIndex(city_.network, city_.box, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mobirescue::roadnet
