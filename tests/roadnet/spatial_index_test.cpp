#include "roadnet/spatial_index.hpp"

#include <gtest/gtest.h>

#include "roadnet/city_builder.hpp"
#include "util/rng.hpp"

namespace mobirescue::roadnet {
namespace {

class SpatialIndexTest : public ::testing::Test {
 protected:
  SpatialIndexTest() {
    CityConfig config;
    config.grid_width = 8;
    config.grid_height = 8;
    config.num_hospitals = 3;
    city_ = BuildCity(config);
    index_ = std::make_unique<SpatialIndex>(city_.network, city_.box, 16);
  }

  /// Reference brute-force nearest segment.
  SegmentId BruteNearest(const util::GeoPoint& p) const {
    SegmentId best = kInvalidSegment;
    double best_d = 1e18;
    for (const RoadSegment& seg : city_.network.segments()) {
      const double d = util::PointToSegmentMeters(
          p, city_.network.landmark(seg.from).pos,
          city_.network.landmark(seg.to).pos);
      if (d < best_d) {
        best_d = d;
        best = seg.id;
      }
    }
    return best;
  }

  double DistTo(SegmentId seg, const util::GeoPoint& p) const {
    return util::PointToSegmentMeters(p, city_.network.landmark(city_.network.segment(seg).from).pos,
                                      city_.network.landmark(city_.network.segment(seg).to).pos);
  }

  City city_;
  std::unique_ptr<SpatialIndex> index_;
};

TEST_F(SpatialIndexTest, MatchesBruteForceDistances) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const util::GeoPoint p =
        city_.box.At(rng.Uniform(0.02, 0.98), rng.Uniform(0.02, 0.98));
    const SegmentId fast = index_->NearestSegment(p);
    const SegmentId brute = BruteNearest(p);
    ASSERT_NE(fast, kInvalidSegment);
    // Ties between parallel two-way twins are fine; distances must match.
    EXPECT_NEAR(DistTo(fast, p), DistTo(brute, p), 1.0)
        << "point " << p.lat << "," << p.lon;
  }
}

TEST_F(SpatialIndexTest, MaxRadiusFiltersFarPoints) {
  // A point at a box corner, radius too small to reach any segment.
  const util::GeoPoint corner = city_.box.At(0.0, 0.0);
  const SegmentId any = index_->NearestSegment(corner);
  ASSERT_NE(any, kInvalidSegment);
  const double d = DistTo(any, corner);
  if (d > 10.0) {
    EXPECT_EQ(index_->NearestSegment(corner, d / 2.0), kInvalidSegment);
  }
  EXPECT_NE(index_->NearestSegment(corner, d * 2.0 + 10.0), kInvalidSegment);
}

TEST_F(SpatialIndexTest, SegmentsNearReturnsNeighbourhood) {
  const util::GeoPoint center = city_.box.Center();
  const auto near = index_->SegmentsNear(center, 3000.0);
  EXPECT_FALSE(near.empty());
  for (SegmentId sid : near) {
    const util::GeoPoint mid = city_.network.SegmentMidpoint(sid);
    EXPECT_LE(util::ApproxDistanceMeters(center, mid), 3000.0 + 1.0);
  }
}

TEST_F(SpatialIndexTest, EmptyNetwork) {
  RoadNetwork empty;
  SpatialIndex index(empty, city_.box, 4);
  EXPECT_EQ(index.NearestSegment(city_.box.Center()), kInvalidSegment);
  EXPECT_TRUE(index.SegmentsNear(city_.box.Center(), 1000.0).empty());
}

TEST_F(SpatialIndexTest, RejectsBadCellCount) {
  EXPECT_THROW(SpatialIndex(city_.network, city_.box, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mobirescue::roadnet
