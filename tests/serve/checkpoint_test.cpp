#include "serve/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mobirescue::serve {
namespace {

/// An agent whose weights have drifted from initialization: pushes random
/// transitions and takes gradient steps.
std::shared_ptr<rl::DqnAgent> TrainedAgent() {
  rl::DqnConfig config;
  config.feature_dim = 5;
  config.hidden = {16, 8};
  config.batch_size = 16;
  config.seed = 77;
  auto agent = std::make_shared<rl::DqnAgent>(config);

  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    rl::Transition t;
    t.features.resize(config.feature_dim);
    for (double& f : t.features) f = rng.Uniform(-1.0, 1.0);
    t.reward = rng.Uniform(-1.0, 1.0);
    t.terminal = i % 5 == 0;
    if (!t.terminal) {
      t.next_candidates.assign(3, std::vector<double>(config.feature_dim));
      for (auto& row : t.next_candidates) {
        for (double& f : row) f = rng.Uniform(-1.0, 1.0);
      }
    }
    agent->Push(std::move(t));
  }
  for (int i = 0; i < 30; ++i) agent->TrainStep();
  return agent;
}

/// A small trained-looking SVM model + scaler, built directly.
ServiceCheckpoint HandMadeCheckpoint() {
  ServiceCheckpoint ckpt;
  ckpt.dqn.feature_dim = 5;
  ckpt.dqn.hidden = {16, 8};

  ml::KernelConfig kernel;
  kernel.type = ml::KernelType::kRbf;
  kernel.gamma = 0.37;
  ckpt.svm = ml::SvmModel(
      kernel,
      {{0.25, -1.5, 3.0}, {-0.75, 2.25, -0.125}, {1.0 / 3.0, 0.1, -2.7}},
      {0.5, -1.25, 0.8125}, -0.3217);
  ml::FeatureScaler scaler;
  scaler.Restore({10.5, -2.25, 100.0 / 7.0}, {3.75, 0.5, 12.1});
  ckpt.svm_scaler = scaler;
  ckpt.svm_threshold = 0.1234567890123456;
  return ckpt;
}

std::vector<std::vector<double>> ProbeBatch(std::size_t rows,
                                            std::size_t dim,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> batch(rows, std::vector<double>(dim));
  for (auto& row : batch) {
    for (double& v : row) v = rng.Uniform(-2.0, 2.0);
  }
  return batch;
}

TEST(CheckpointTest, DqnRoundTripBitIdenticalQValues) {
  auto agent = TrainedAgent();
  ServiceCheckpoint ckpt = HandMadeCheckpoint();
  ckpt.dqn = agent->config();
  ckpt.dqn_weights = agent->SaveWeights();
  ckpt.dqn_target_weights = agent->SaveTargetWeights();
  // 30 train steps < target_sync_every: the target net still lags the
  // online net, so this round trip only passes if both are checkpointed.
  ASSERT_NE(ckpt.dqn_target_weights, ckpt.dqn_weights);

  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const ServiceCheckpoint loaded = LoadCheckpoint(ss);
  auto restored = RestoreAgent(loaded);

  ASSERT_EQ(restored->config().feature_dim, agent->config().feature_dim);
  ASSERT_EQ(restored->config().hidden, agent->config().hidden);

  const auto probe = ProbeBatch(64, agent->config().feature_dim, 11);
  const std::vector<double> want = agent->QValues(probe);
  const std::vector<double> got = restored->QValues(probe);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    // Bit-identical: the text format stores doubles at max precision.
    EXPECT_EQ(got[i], want[i]) << "row " << i;
  }
  // The target network is restored too (bootstrap targets continue
  // seamlessly after a server restart).
  EXPECT_EQ(restored->MaxTargetQ(probe), agent->MaxTargetQ(probe));
}

TEST(CheckpointTest, SvmRoundTripBitIdenticalDecisionValues) {
  const ServiceCheckpoint ckpt = HandMadeCheckpoint();

  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const ServiceCheckpoint loaded = LoadCheckpoint(ss);

  EXPECT_EQ(loaded.svm_threshold, ckpt.svm_threshold);
  const auto raw = ProbeBatch(32, 3, 29);
  std::vector<std::vector<double>> scaled_want, scaled_got;
  for (const auto& row : raw) {
    scaled_want.push_back(ckpt.svm_scaler.Transform(row));
    scaled_got.push_back(loaded.svm_scaler.Transform(row));
  }
  const std::vector<double> want = ckpt.svm.DecisionValues(scaled_want);
  const std::vector<double> got = loaded.svm.DecisionValues(scaled_got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "row " << i;
  }
}

TEST(CheckpointTest, FileRoundTrip) {
  auto agent = TrainedAgent();
  ServiceCheckpoint ckpt = HandMadeCheckpoint();
  ckpt.dqn = agent->config();
  ckpt.dqn_weights = agent->SaveWeights();
  ckpt.dqn_target_weights = agent->SaveTargetWeights();

  const std::string path =
      ::testing::TempDir() + "/mobirescue_ckpt_test.txt";
  SaveCheckpointToFile(ckpt, path);
  const ServiceCheckpoint loaded = LoadCheckpointFromFile(path);
  EXPECT_EQ(loaded.dqn_weights, ckpt.dqn_weights);
  EXPECT_EQ(loaded.svm_threshold, ckpt.svm_threshold);
}

TEST(CheckpointTest, MalformedInputThrows) {
  std::stringstream wrong_magic("not-a-checkpoint 1 2 3");
  EXPECT_THROW(LoadCheckpoint(wrong_magic), std::runtime_error);

  // Truncated: header only.
  std::stringstream truncated("mobirescue-ckpt-v1\nmobirescue-dqn-v1\n5 2 16");
  EXPECT_THROW(LoadCheckpoint(truncated), std::runtime_error);

  EXPECT_THROW(LoadCheckpointFromFile("/nonexistent/path/ckpt.txt"),
               std::runtime_error);
}

// --- Hardened loading ------------------------------------------------------

std::vector<std::string> Tokens(const std::string& text) {
  std::istringstream is(text);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

std::string Join(const std::vector<std::string>& tokens, std::size_t count) {
  std::string out;
  for (std::size_t i = 0; i < count; ++i) {
    if (i != 0) out += " ";
    out += tokens[i];
  }
  return out;
}

ServiceCheckpoint FullCheckpoint() {
  auto agent = TrainedAgent();
  ServiceCheckpoint ckpt = HandMadeCheckpoint();
  ckpt.dqn = agent->config();
  ckpt.dqn_weights = agent->SaveWeights();
  ckpt.dqn_target_weights = agent->SaveTargetWeights();
  return ckpt;
}

ServingState SampleServingState() {
  ServingState s;
  s.ticks = 97;
  s.watermark = 29100.0;
  mobility::GpsRecord a;
  a.person = 3;
  a.t = 29099.5;
  a.pos = {43.7712345678901, 11.2598765432109};
  a.altitude_m = 51.25;
  a.speed_mps = 2.75;
  mobility::GpsRecord b = a;
  b.person = 9;
  b.t = 29100.0;
  s.latest = {a, b};
  mobility::GpsRecord deferred = a;
  deferred.t = 29410.0;
  s.deferred = {deferred};
  s.counters.applied = 1234;
  s.counters.matched = 1000;
  s.counters.unmatched = 234;
  s.counters.quarantined_non_finite = 5;
  s.counters.quarantined_out_of_box = 7;
  s.counters.quarantined_stale = 2;
  s.flow_cells = {{12, 3}, {40, 1}};
  s.flow_seen = {100, 101, 250};
  return s;
}

TEST(CheckpointTest, ExpectedWeightCountMatchesTheAgent) {
  auto agent = TrainedAgent();
  EXPECT_EQ(ExpectedDqnWeightCount(agent->config()),
            agent->SaveWeights().size());
  // 5 -> {16, 8} -> 1: (5*16+16) + (16*8+8) + (8+1).
  rl::DqnConfig config;
  config.feature_dim = 5;
  config.hidden = {16, 8};
  EXPECT_EQ(ExpectedDqnWeightCount(config), 241u);
}

TEST(CheckpointTest, NanAndInfWeightsRoundTrip) {
  ServiceCheckpoint ckpt = FullCheckpoint();
  ckpt.dqn_weights[0] = std::numeric_limits<double>::quiet_NaN();
  ckpt.dqn_weights[1] = std::numeric_limits<double>::infinity();
  ckpt.dqn_weights[2] = -std::numeric_limits<double>::infinity();

  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const ServiceCheckpoint loaded = LoadCheckpoint(ss);
  ASSERT_EQ(loaded.dqn_weights.size(), ckpt.dqn_weights.size());
  // A poisoned model survives the round trip poisoned (so a monitoring
  // layer can detect it) instead of failing to parse.
  EXPECT_TRUE(std::isnan(loaded.dqn_weights[0]));
  EXPECT_EQ(loaded.dqn_weights[1], std::numeric_limits<double>::infinity());
  EXPECT_EQ(loaded.dqn_weights[2], -std::numeric_limits<double>::infinity());
  for (std::size_t i = 3; i < ckpt.dqn_weights.size(); ++i) {
    EXPECT_EQ(loaded.dqn_weights[i], ckpt.dqn_weights[i]) << i;
  }
}

TEST(CheckpointTest, WeightBlockSizeMustMatchTopology) {
  ServiceCheckpoint ckpt = FullCheckpoint();
  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  std::vector<std::string> tokens = Tokens(ss.str());

  // The online weight block's count token directly follows the 2 topology
  // tokens, 2 hidden widths and 9 hyperparameters after the two magics.
  const std::size_t count_index = 2 + 2 + 2 + 9;
  ASSERT_EQ(tokens[count_index],
            std::to_string(ExpectedDqnWeightCount(ckpt.dqn)));

  // One weight short / one extra: both reject, even though the stream
  // could satisfy the smaller read.
  for (const char* bad : {"240", "242"}) {
    std::vector<std::string> corrupt = tokens;
    corrupt[count_index] = bad;
    std::istringstream is(Join(corrupt, corrupt.size()));
    EXPECT_THROW(LoadCheckpoint(is), std::runtime_error) << bad;
  }

  // A corrupt header advertising a huge block must throw *before* any
  // allocation happens (the size is checked against the topology).
  std::vector<std::string> huge = tokens;
  huge[count_index] = "999999999999";
  std::istringstream is(Join(huge, huge.size()));
  EXPECT_THROW(LoadCheckpoint(is), std::runtime_error);
}

TEST(CheckpointTest, TopologyBoundsRejectCorruptHeaders) {
  // feature_dim beyond the sanity bound: rejected before the hidden widths
  // are even read (no allocation from a corrupt count).
  std::stringstream huge_dim(
      "mobirescue-ckpt-v1\nmobirescue-dqn-v1\n9999999 2 16 8\n");
  EXPECT_THROW(LoadCheckpoint(huge_dim), std::runtime_error);

  std::stringstream huge_layers(
      "mobirescue-ckpt-v1\nmobirescue-dqn-v1\n5 4096 16\n");
  EXPECT_THROW(LoadCheckpoint(huge_layers), std::runtime_error);

  std::stringstream zero_width(
      "mobirescue-ckpt-v1\nmobirescue-dqn-v1\n5 2 16 0\n");
  EXPECT_THROW(LoadCheckpoint(zero_width), std::runtime_error);
}

TEST(CheckpointTest, TruncationAtEveryTokenBoundaryThrows) {
  // The property the loader must hold: a model-only checkpoint cut after
  // ANY proper prefix of its tokens fails to parse — no silent zero-filled
  // models, no partial loads.
  ServiceCheckpoint ckpt = FullCheckpoint();
  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const std::vector<std::string> tokens = Tokens(ss.str());
  ASSERT_GT(tokens.size(), 100u);

  for (std::size_t n = 0; n < tokens.size(); ++n) {
    std::istringstream is(Join(tokens, n));
    EXPECT_THROW(LoadCheckpoint(is), std::runtime_error)
        << "prefix of " << n << " tokens parsed";
  }
  // Sanity: the full document does parse.
  std::istringstream full(Join(tokens, tokens.size()));
  EXPECT_NO_THROW(LoadCheckpoint(full));
}

TEST(CheckpointTest, ServingStateTruncationThrowsAndModelPrefixLoads) {
  ServiceCheckpoint ckpt = FullCheckpoint();
  const std::stringstream model_only = [&] {
    std::stringstream ss;
    SaveCheckpoint(ckpt, ss);
    return ss;
  }();
  const std::size_t model_tokens = Tokens(model_only.str()).size();

  ckpt.has_serving_state = true;
  ckpt.serving = SampleServingState();
  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const std::vector<std::string> tokens = Tokens(ss.str());
  ASSERT_GT(tokens.size(), model_tokens);

  // Cut exactly at the model/serving boundary: a valid v1 model-only file
  // (backward compatibility with pre-recovery checkpoints).
  {
    std::istringstream is(Join(tokens, model_tokens));
    const ServiceCheckpoint loaded = LoadCheckpoint(is);
    EXPECT_FALSE(loaded.has_serving_state);
  }
  // Cut anywhere inside the serving-state section: throws.
  for (std::size_t n = model_tokens + 1; n < tokens.size(); ++n) {
    std::istringstream is(Join(tokens, n));
    EXPECT_THROW(LoadCheckpoint(is), std::runtime_error)
        << "serving-state prefix of " << n << " tokens parsed";
  }
}

TEST(CheckpointTest, TrailingGarbageThrows) {
  ServiceCheckpoint ckpt = FullCheckpoint();
  std::stringstream model_only;
  SaveCheckpoint(ckpt, model_only);
  std::istringstream with_garbage(model_only.str() + " 42");
  EXPECT_THROW(LoadCheckpoint(with_garbage), std::runtime_error);

  ckpt.has_serving_state = true;
  ckpt.serving = SampleServingState();
  std::stringstream with_state;
  SaveCheckpoint(ckpt, with_state);
  std::istringstream after_state(with_state.str() + " 42");
  EXPECT_THROW(LoadCheckpoint(after_state), std::runtime_error);
}

TEST(CheckpointTest, ServingStateRoundTrip) {
  ServiceCheckpoint ckpt = FullCheckpoint();
  ckpt.has_serving_state = true;
  ckpt.serving = SampleServingState();

  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const ServiceCheckpoint loaded = LoadCheckpoint(ss);

  ASSERT_TRUE(loaded.has_serving_state);
  const ServingState& want = ckpt.serving;
  const ServingState& got = loaded.serving;
  EXPECT_EQ(got.ticks, want.ticks);
  EXPECT_EQ(got.watermark, want.watermark);
  ASSERT_EQ(got.latest.size(), want.latest.size());
  for (std::size_t i = 0; i < want.latest.size(); ++i) {
    EXPECT_EQ(got.latest[i].person, want.latest[i].person);
    EXPECT_EQ(got.latest[i].t, want.latest[i].t);
    EXPECT_EQ(got.latest[i].pos.lat, want.latest[i].pos.lat);
    EXPECT_EQ(got.latest[i].pos.lon, want.latest[i].pos.lon);
    EXPECT_EQ(got.latest[i].speed_mps, want.latest[i].speed_mps);
  }
  ASSERT_EQ(got.deferred.size(), want.deferred.size());
  EXPECT_EQ(got.deferred[0].t, want.deferred[0].t);
  EXPECT_EQ(got.counters.applied, want.counters.applied);
  EXPECT_EQ(got.counters.quarantined_non_finite,
            want.counters.quarantined_non_finite);
  EXPECT_EQ(got.counters.quarantined_out_of_box,
            want.counters.quarantined_out_of_box);
  EXPECT_EQ(got.counters.quarantined_stale, want.counters.quarantined_stale);
  EXPECT_EQ(got.flow_cells, want.flow_cells);
  EXPECT_EQ(got.flow_seen, want.flow_seen);
}

TEST(CheckpointTest, ServingStateCountsAreBoundsChecked) {
  ServiceCheckpoint ckpt = FullCheckpoint();
  ckpt.has_serving_state = true;
  ckpt.serving = SampleServingState();
  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const std::string text = ss.str();

  // Corrupt the "latest <n>" count into an absurd value: the loader must
  // reject it up front instead of resizing a multi-gigabyte vector.
  const std::string needle = "latest 2";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  std::istringstream corrupt(text.substr(0, at) + "latest 99999999999" +
                             text.substr(at + needle.size()));
  EXPECT_THROW(LoadCheckpoint(corrupt), std::runtime_error);
}

}  // namespace
}  // namespace mobirescue::serve
