#include "serve/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "util/rng.hpp"

namespace mobirescue::serve {
namespace {

/// An agent whose weights have drifted from initialization: pushes random
/// transitions and takes gradient steps.
std::shared_ptr<rl::DqnAgent> TrainedAgent() {
  rl::DqnConfig config;
  config.feature_dim = 5;
  config.hidden = {16, 8};
  config.batch_size = 16;
  config.seed = 77;
  auto agent = std::make_shared<rl::DqnAgent>(config);

  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    rl::Transition t;
    t.features.resize(config.feature_dim);
    for (double& f : t.features) f = rng.Uniform(-1.0, 1.0);
    t.reward = rng.Uniform(-1.0, 1.0);
    t.terminal = i % 5 == 0;
    if (!t.terminal) {
      t.next_candidates.assign(3, std::vector<double>(config.feature_dim));
      for (auto& row : t.next_candidates) {
        for (double& f : row) f = rng.Uniform(-1.0, 1.0);
      }
    }
    agent->Push(std::move(t));
  }
  for (int i = 0; i < 30; ++i) agent->TrainStep();
  return agent;
}

/// A small trained-looking SVM model + scaler, built directly.
ServiceCheckpoint HandMadeCheckpoint() {
  ServiceCheckpoint ckpt;
  ckpt.dqn.feature_dim = 5;
  ckpt.dqn.hidden = {16, 8};

  ml::KernelConfig kernel;
  kernel.type = ml::KernelType::kRbf;
  kernel.gamma = 0.37;
  ckpt.svm = ml::SvmModel(
      kernel,
      {{0.25, -1.5, 3.0}, {-0.75, 2.25, -0.125}, {1.0 / 3.0, 0.1, -2.7}},
      {0.5, -1.25, 0.8125}, -0.3217);
  ml::FeatureScaler scaler;
  scaler.Restore({10.5, -2.25, 100.0 / 7.0}, {3.75, 0.5, 12.1});
  ckpt.svm_scaler = scaler;
  ckpt.svm_threshold = 0.1234567890123456;
  return ckpt;
}

std::vector<std::vector<double>> ProbeBatch(std::size_t rows,
                                            std::size_t dim,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> batch(rows, std::vector<double>(dim));
  for (auto& row : batch) {
    for (double& v : row) v = rng.Uniform(-2.0, 2.0);
  }
  return batch;
}

TEST(CheckpointTest, DqnRoundTripBitIdenticalQValues) {
  auto agent = TrainedAgent();
  ServiceCheckpoint ckpt = HandMadeCheckpoint();
  ckpt.dqn = agent->config();
  ckpt.dqn_weights = agent->SaveWeights();
  ckpt.dqn_target_weights = agent->SaveTargetWeights();
  // 30 train steps < target_sync_every: the target net still lags the
  // online net, so this round trip only passes if both are checkpointed.
  ASSERT_NE(ckpt.dqn_target_weights, ckpt.dqn_weights);

  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const ServiceCheckpoint loaded = LoadCheckpoint(ss);
  auto restored = RestoreAgent(loaded);

  ASSERT_EQ(restored->config().feature_dim, agent->config().feature_dim);
  ASSERT_EQ(restored->config().hidden, agent->config().hidden);

  const auto probe = ProbeBatch(64, agent->config().feature_dim, 11);
  const std::vector<double> want = agent->QValues(probe);
  const std::vector<double> got = restored->QValues(probe);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    // Bit-identical: the text format stores doubles at max precision.
    EXPECT_EQ(got[i], want[i]) << "row " << i;
  }
  // The target network is restored too (bootstrap targets continue
  // seamlessly after a server restart).
  EXPECT_EQ(restored->MaxTargetQ(probe), agent->MaxTargetQ(probe));
}

TEST(CheckpointTest, SvmRoundTripBitIdenticalDecisionValues) {
  const ServiceCheckpoint ckpt = HandMadeCheckpoint();

  std::stringstream ss;
  SaveCheckpoint(ckpt, ss);
  const ServiceCheckpoint loaded = LoadCheckpoint(ss);

  EXPECT_EQ(loaded.svm_threshold, ckpt.svm_threshold);
  const auto raw = ProbeBatch(32, 3, 29);
  std::vector<std::vector<double>> scaled_want, scaled_got;
  for (const auto& row : raw) {
    scaled_want.push_back(ckpt.svm_scaler.Transform(row));
    scaled_got.push_back(loaded.svm_scaler.Transform(row));
  }
  const std::vector<double> want = ckpt.svm.DecisionValues(scaled_want);
  const std::vector<double> got = loaded.svm.DecisionValues(scaled_got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "row " << i;
  }
}

TEST(CheckpointTest, FileRoundTrip) {
  auto agent = TrainedAgent();
  ServiceCheckpoint ckpt = HandMadeCheckpoint();
  ckpt.dqn = agent->config();
  ckpt.dqn_weights = agent->SaveWeights();
  ckpt.dqn_target_weights = agent->SaveTargetWeights();

  const std::string path =
      ::testing::TempDir() + "/mobirescue_ckpt_test.txt";
  SaveCheckpointToFile(ckpt, path);
  const ServiceCheckpoint loaded = LoadCheckpointFromFile(path);
  EXPECT_EQ(loaded.dqn_weights, ckpt.dqn_weights);
  EXPECT_EQ(loaded.svm_threshold, ckpt.svm_threshold);
}

TEST(CheckpointTest, MalformedInputThrows) {
  std::stringstream wrong_magic("not-a-checkpoint 1 2 3");
  EXPECT_THROW(LoadCheckpoint(wrong_magic), std::runtime_error);

  // Truncated: header only.
  std::stringstream truncated("mobirescue-ckpt-v1\nmobirescue-dqn-v1\n5 2 16");
  EXPECT_THROW(LoadCheckpoint(truncated), std::runtime_error);

  EXPECT_THROW(LoadCheckpointFromFile("/nonexistent/path/ckpt.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace mobirescue::serve
