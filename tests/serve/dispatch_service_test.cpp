// End-to-end online-serving test (the PR's acceptance criterion): stream an
// evaluation day's GPS records through the sharded ingestion path while
// dispatch ticks fire, and require the per-tick decisions — hence every
// request's fate — to be bit-identical to the batch core::Pipeline replay
// of the same scenario and seed.
#include "serve/dispatch_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/pipeline.hpp"
#include "core/world.hpp"
#include "dispatch/simple_dispatchers.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "serve/checkpoint.hpp"
#include "serve/trace_streamer.hpp"
#include "sim/population_tracker.hpp"
#include "sim/request.hpp"

namespace mobirescue::serve {
namespace {

struct DayOutcome {
  std::vector<sim::Request> requests;
  int served = 0;
  int timely = 0;
};

class DispatchServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new core::World(core::BuildWorld(core::WorldConfig::Small()));
    svm_ = core::TrainSvmPredictor(*world_).release();
    // Same training regime as the integration pipeline suite: with fewer
    // episodes/teams the undertrained agent can serve nothing on the small
    // world, which would make the bit-identity assertions vacuous.
    core::TrainingConfig training;
    training.episodes = 6;
    training.sim.num_teams = 20;
    agent_ = core::TrainAgent(*world_, *svm_, training);
  }
  static void TearDownTestSuite() {
    delete svm_;
    delete world_;
    agent_.reset();
  }

  static sim::SimConfig SimCfg() {
    sim::SimConfig config;
    config.num_teams = 20;
    return config;
  }

  static int EvalDay() { return world_->eval.spec.eval_day; }
  static double DayOffset() { return EvalDay() * util::kSecondsPerDay; }

  static sim::RescueSimulator MakeSimulator() {
    return sim::RescueSimulator(
        *world_->city, *world_->eval.flood,
        sim::RequestsFromEvents(world_->eval.trace.rescues, EvalDay()),
        DayOffset(), SimCfg());
  }

  static mobility::GpsTrace DayTrace() {
    return sim::DaySlice(world_->eval.trace.records, EvalDay());
  }

  static DayOutcome Outcome(const sim::RescueSimulator& simulator) {
    DayOutcome out;
    out.requests = simulator.requests();
    out.served = simulator.metrics().total_served();
    out.timely = simulator.metrics().total_timely();
    return out;
  }

  /// The batch pipeline's replay: PopulationTracker + Run().
  static DayOutcome RunBatch() {
    sim::PopulationTracker tracker(DayTrace());
    dispatch::MobiRescueDispatcher dispatcher(*world_->city, *svm_, tracker,
                                              *world_->index, agent_,
                                              DayOffset());
    sim::RescueSimulator simulator = MakeSimulator();
    simulator.Run(dispatcher);
    return Outcome(simulator);
  }

  /// The online service: sharded multi-threaded ingestion + tick loop.
  static DayOutcome RunStreamed(const predict::SvmRequestPredictor& svm,
                                std::shared_ptr<rl::DqnAgent> agent,
                                ServiceMetrics* metrics_out = nullptr) {
    ServiceConfig config;
    config.queue.shard_capacity = 1 << 15;  // ample: the test needs 0 drops
    DispatchService service(*world_->city, *world_->index, svm,
                            std::move(agent), DayOffset(), config);
    sim::RescueSimulator simulator = MakeSimulator();
    TraceStreamer streamer(DayTrace(), service);
    service.ServeEpisode(simulator, &streamer);
    if (metrics_out != nullptr) *metrics_out = service.metrics();
    return Outcome(simulator);
  }

  static void ExpectIdentical(const DayOutcome& a, const DayOutcome& b) {
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.timely, b.timely);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      const sim::Request& ra = a.requests[i];
      const sim::Request& rb = b.requests[i];
      EXPECT_EQ(ra.status, rb.status) << "request " << i;
      EXPECT_EQ(ra.served_by_team, rb.served_by_team) << "request " << i;
      // Bit-identical times, not approximate: same decisions, same steps.
      EXPECT_EQ(ra.pickup_time, rb.pickup_time) << "request " << i;
      EXPECT_EQ(ra.delivery_time, rb.delivery_time) << "request " << i;
      EXPECT_EQ(ra.driving_delay_s, rb.driving_delay_s) << "request " << i;
    }
  }

  static core::World* world_;
  static predict::SvmRequestPredictor* svm_;
  static std::shared_ptr<rl::DqnAgent> agent_;
};

core::World* DispatchServiceTest::world_ = nullptr;
predict::SvmRequestPredictor* DispatchServiceTest::svm_ = nullptr;
std::shared_ptr<rl::DqnAgent> DispatchServiceTest::agent_ = nullptr;

TEST_F(DispatchServiceTest, StreamedDecisionsMatchBatchReplay) {
  const DayOutcome batch = RunBatch();
  EXPECT_FALSE(batch.requests.empty());
  EXPECT_GT(batch.served, 0);

  ServiceMetrics metrics;
  const DayOutcome streamed = RunStreamed(*svm_, agent_, &metrics);
  ExpectIdentical(batch, streamed);

  // The stream made it through intact: nothing dropped, everything the
  // day produced was applied.
  EXPECT_EQ(metrics.ingest.dropped, 0u);
  EXPECT_EQ(metrics.ingest.accepted, DayTrace().size());
  EXPECT_EQ(metrics.state.applied, metrics.ingest.accepted);
  EXPECT_GT(metrics.state.matched, 0u);
  EXPECT_GT(metrics.people_tracked, 0u);
}

TEST_F(DispatchServiceTest, TickLatencyWellUnderIpBaselineBudget) {
  ServiceMetrics metrics;
  RunStreamed(*svm_, agent_, &metrics);

  // One tick per 5-min dispatch round over the 24 h horizon.
  EXPECT_EQ(metrics.ticks, 288u);
  EXPECT_EQ(metrics.decide_ms.count, 288u);
  EXPECT_GT(metrics.decide_ms.max, 0.0);
  EXPECT_LE(metrics.decide_ms.p50, metrics.decide_ms.p95);
  EXPECT_LE(metrics.decide_ms.p95, metrics.decide_ms.p99);
  // The paper's contrast: the IP baselines need ~300 s per round; the
  // served model must decide in well under a second (smoke bound).
  EXPECT_LT(metrics.decide_ms.p99, 1000.0);
  // The featurizer's tree cache is exercised by the tick loop.
  EXPECT_GT(metrics.router_cache.hits + metrics.router_cache.misses, 0u);
  EXPECT_GT(metrics.ingest_rate_per_s, 0.0);
}

TEST_F(DispatchServiceTest, DefaultHealthRulesReproduceTheHardcodedLadder) {
  // DESIGN.md §16: the declarative health engine's default rules must
  // drive the degradation ladder exactly as the pre-engine hardcoded
  // gates did. Run the same faulted day twice — once on the built-in
  // rules, once with DefaultHealthRules(config) installed explicitly via
  // the replace path — exercising both ladder rules: two injected decide
  // failures plus a budget every primary tick overruns. Decisions and
  // ladder metrics must match decision-for-decision.
  auto run = [](bool replace_rules) {
    ServiceConfig config;
    config.queue.shard_capacity = 1 << 15;
    config.degraded_cooldown_ticks = 4;
    config.decide_budget_ms = 1e-9;  // every primary tick overruns
    int failures_armed = 2;
    config.decide_chaos = [failures_armed](util::SimTime) mutable {
      if (failures_armed > 0) {
        --failures_armed;
        throw std::runtime_error("injected decide failure");
      }
    };
    if (replace_rules) {
      config.replace_default_health_rules = true;
      config.health_rules = DispatchService::DefaultHealthRules(config);
    }
    DispatchService service(*world_->city, *world_->index, *svm_, agent_,
                            DayOffset(), config);
    sim::RescueSimulator simulator = MakeSimulator();
    TraceStreamer streamer(DayTrace(), service);
    service.ServeEpisode(simulator, &streamer);
    return std::make_pair(Outcome(simulator), service.metrics());
  };

  const auto built_in = run(false);
  const auto explicit_rules = run(true);
  ExpectIdentical(built_in.first, explicit_rules.first);

  const ServiceMetrics& a = built_in.second;
  const ServiceMetrics& b = explicit_rules.second;
  EXPECT_EQ(a.decide_errors, 2u);
  EXPECT_EQ(a.decide_errors, b.decide_errors);
  EXPECT_EQ(a.budget_overruns, b.budget_overruns);
  EXPECT_EQ(a.fallback_ticks, b.fallback_ticks);
  EXPECT_EQ(a.health_trips, b.health_trips);
  EXPECT_EQ(a.degraded, b.degraded);
  // The ladder actually engaged: both failure ticks and the cooldowns
  // after every overrun served on the fallback, but never the whole day.
  EXPECT_GT(a.fallback_ticks, 0u);
  EXPECT_LT(a.fallback_ticks, 288u);
  EXPECT_GT(a.health_trips, 0u);
}

TEST_F(DispatchServiceTest, CheckpointRestartServesIdentically) {
  const DayOutcome batch = RunBatch();

  // Save the trained models, reload them into a fresh server process
  // stand-in, and serve the same day: decisions must not change.
  std::stringstream blob;
  SaveCheckpoint(MakeCheckpoint(*agent_, *svm_), blob);
  const ServiceCheckpoint loaded = LoadCheckpoint(blob);
  auto restored_agent = RestoreAgent(loaded);
  auto restored_svm = RestorePredictor(loaded, *world_->train.factors);

  const DayOutcome restored = RunStreamed(*restored_svm, restored_agent);
  ExpectIdentical(batch, restored);
}

TEST_F(DispatchServiceTest, BaselineDispatcherServes) {
  // ctor B: the service hosts any dispatcher; compare against the plain
  // simulator run of the same baseline.
  sim::RescueSimulator batch_sim = MakeSimulator();
  dispatch::GreedyNearestDispatcher batch_dispatcher(*world_->city);
  batch_sim.Run(batch_dispatcher);
  const DayOutcome batch = Outcome(batch_sim);

  DispatchService service(
      *world_->city, *world_->index,
      std::make_unique<dispatch::GreedyNearestDispatcher>(*world_->city));
  sim::RescueSimulator sim = MakeSimulator();
  TraceStreamer streamer(DayTrace(), service);
  service.ServeEpisode(sim, &streamer);
  ExpectIdentical(batch, Outcome(sim));

  const ServiceMetrics metrics = service.metrics();
  // No MobiRescue dispatcher: router cache stays untouched.
  EXPECT_EQ(metrics.router_cache.hits + metrics.router_cache.misses, 0u);
  EXPECT_EQ(service.predicted_demand(), nullptr);
}

TEST_F(DispatchServiceTest, PredictedDemandExposed) {
  ServiceConfig config;
  config.queue.shard_capacity = 1 << 15;
  DispatchService service(*world_->city, *world_->index, *svm_, agent_,
                          DayOffset(), config);
  ASSERT_NE(service.predicted_demand(), nullptr);

  sim::RescueSimulator simulator = MakeSimulator();
  TraceStreamer streamer(DayTrace(), service);
  service.ServeEpisode(simulator, &streamer);
  // After a served day the cached {ñ_e} prediction is populated.
  EXPECT_FALSE(service.predicted_demand()->empty());
}

TEST_F(DispatchServiceTest, DeferredRecordsApplyOnLaterTicks) {
  // Records pushed ahead of the tick watermark are parked, not lost, and
  // must not reach the state before their timestamp.
  ServiceConfig config;
  DispatchService service(
      *world_->city, *world_->index,
      std::make_unique<dispatch::GreedyNearestDispatcher>(*world_->city),
      config);

  mobility::GpsRecord early;
  early.person = 1;
  early.t = 100.0;
  early.pos = world_->city->network.landmark(0).pos;
  mobility::GpsRecord late = early;
  late.person = 2;
  late.t = 500.0;
  service.Ingest(early);
  service.Ingest(late);

  service.AdvanceStateTo(300.0);
  EXPECT_EQ(service.state().counters().applied, 1u);
  EXPECT_EQ(service.metrics().deferred, 1u);

  service.AdvanceStateTo(600.0);
  EXPECT_EQ(service.state().counters().applied, 2u);
}

TEST_F(DispatchServiceTest, ResetMetricsStartsAFreshWindow) {
  // One service, two served episodes with an explicit ResetMetrics between
  // them: the second window's stats must describe the second episode alone,
  // not accumulate across both (the bug this API fixes).
  DispatchService service(
      *world_->city, *world_->index,
      std::make_unique<dispatch::GreedyNearestDispatcher>(*world_->city));

  sim::RescueSimulator first = MakeSimulator();
  TraceStreamer first_streamer(DayTrace(), service);
  service.ServeEpisode(first, &first_streamer);
  const ServiceMetrics after_first = service.metrics();
  EXPECT_EQ(after_first.ticks, 288u);
  EXPECT_EQ(after_first.decide_ms.count, 288u);

  // Without a reset the second episode would double everything.
  service.ResetMetrics();
  const ServiceMetrics cleared = service.metrics();
  EXPECT_EQ(cleared.ticks, 0u);
  EXPECT_EQ(cleared.deferred, 0u);
  EXPECT_EQ(cleared.decide_ms.count, 0u);
  EXPECT_EQ(cleared.drain_ms.count, 0u);
  // Cumulative ingest/state counters are NOT window-scoped: the stream
  // already delivered a day of records and that history stays.
  EXPECT_EQ(cleared.ingest.accepted, after_first.ingest.accepted);

  sim::RescueSimulator second = MakeSimulator();
  TraceStreamer second_streamer(DayTrace(), service);
  service.ServeEpisode(second, &second_streamer);
  const ServiceMetrics after_second = service.metrics();
  EXPECT_EQ(after_second.ticks, 288u);
  EXPECT_EQ(after_second.decide_ms.count, 288u);
  EXPECT_EQ(after_second.ingest.accepted, 2 * DayTrace().size());
}

TEST_F(DispatchServiceTest, ServedEpisodeExportsValidChromeTrace) {
  // The acceptance criterion: trace a full 288-tick served episode and the
  // export must be structurally valid Chrome trace_event JSON carrying the
  // tick-phase spans.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable();
  RunStreamed(*svm_, agent_);
  recorder.Disable();

  const std::vector<obs::TraceEvent> events = recorder.Collect();
  auto count_name = [&events](const char* name) {
    return std::count_if(events.begin(), events.end(),
                         [name](const obs::TraceEvent& e) {
                           return std::string(e.name) == name;
                         });
  };
  EXPECT_EQ(count_name("serve.tick"), 288);
  EXPECT_EQ(count_name("serve.decide"), 288);
  EXPECT_GE(count_name("serve.drain"), 288);  // +1 final flush
  EXPECT_EQ(count_name("serve.episode"), 1);

  const std::string path =
      std::string(::testing::TempDir()) + "serve_episode_trace.json";
  obs::WriteChromeTraceFile(path, recorder);
  recorder.Clear();

  std::string error;
  EXPECT_TRUE(obs::ValidateChromeTraceFile(path, &error)) << error;
}

}  // namespace
}  // namespace mobirescue::serve
