// Deterministic fault-injection unit tests: the all-zero plan is the
// identity (the bit-identity invariant rides on this), every fault kind
// fires exactly as its probability dictates, and the same (plan, trace)
// always produces the byte-identical schedule — no hidden RNG state.
#include "serve/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <set>

namespace mobirescue::serve {
namespace {

mobility::GpsTrace MakeTrace(int people, int records_each) {
  mobility::GpsTrace trace;
  for (int k = 0; k < records_each; ++k) {
    for (int p = 0; p < people; ++p) {
      mobility::GpsRecord r;
      r.person = p;
      r.t = 60.0 * k + p;  // distinct timestamps, time-ordered
      r.pos = {43.77 + 0.001 * p, 11.25 + 0.001 * k};
      r.altitude_m = 50.0;
      r.speed_mps = 3.0;
      trace.push_back(r);
    }
  }
  return trace;
}

// Bit-pattern equality: corrupted records legitimately carry NaN fields,
// where operator== would deny the byte-identity this file asserts.
bool BitEq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool SameRecord(const mobility::GpsRecord& a, const mobility::GpsRecord& b) {
  return a.person == b.person && BitEq(a.t, b.t) &&
         BitEq(a.pos.lat, b.pos.lat) && BitEq(a.pos.lon, b.pos.lon) &&
         BitEq(a.altitude_m, b.altitude_m) && BitEq(a.speed_mps, b.speed_mps);
}

TEST(FaultPlanTest, ZeroPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.Empty());
  EXPECT_FALSE(plan.AnyRecordFaults());
  EXPECT_FALSE(FaultPlan::Chaos().Empty());
  EXPECT_TRUE(FaultPlan::Chaos().AnyRecordFaults());
}

TEST(FaultInjectorTest, ZeroPlanIsTheIdentitySchedule) {
  const mobility::GpsTrace trace = MakeTrace(5, 20);
  FaultInjector injector{FaultPlan{}};
  const std::vector<TimedDelivery> schedule = injector.PlanDeliveries(trace);

  ASSERT_EQ(schedule.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(schedule[i].deliver_at, trace[i].t);
    EXPECT_TRUE(SameRecord(schedule[i].record, trace[i]));
  }
  const FaultCounts& c = injector.counts();
  EXPECT_EQ(c.dropped + c.duplicated + c.delayed + c.corrupted + c.reordered,
            0u);
  // The per-tick hooks never fire on a zero plan either.
  EXPECT_FALSE(injector.ShouldFailDecide(300.0));
  EXPECT_FALSE(injector.ShouldFailPrediction(300.0));
  EXPECT_FALSE(injector.KillsBeforeTick(0));
}

TEST(FaultInjectorTest, SamePlanSameTraceIsByteIdentical) {
  const mobility::GpsTrace trace = MakeTrace(8, 30);
  const FaultPlan plan = FaultPlan::Chaos(1234);
  FaultInjector a{plan};
  FaultInjector b{plan};
  const auto sa = a.PlanDeliveries(trace);
  const auto sb = b.PlanDeliveries(trace);

  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].deliver_at, sb[i].deliver_at) << i;
    EXPECT_TRUE(SameRecord(sa[i].record, sb[i].record)) << i;
  }
  EXPECT_EQ(a.counts().dropped, b.counts().dropped);
  EXPECT_EQ(a.counts().corrupted, b.counts().corrupted);
  EXPECT_EQ(a.counts().reordered, b.counts().reordered);

  // And the hooks replay identically too (hash of time, not a stateful
  // draw): the exact property restarts rely on.
  for (int tick = 0; tick < 50; ++tick) {
    const double now = 300.0 * tick;
    EXPECT_EQ(a.ShouldFailDecide(now), b.ShouldFailDecide(now));
    EXPECT_EQ(a.ShouldFailPrediction(now), b.ShouldFailPrediction(now));
  }
}

TEST(FaultInjectorTest, SeedChangesTheSchedule) {
  const mobility::GpsTrace trace = MakeTrace(8, 30);
  FaultInjector a{FaultPlan::Chaos(1)};
  FaultInjector b{FaultPlan::Chaos(2)};
  a.PlanDeliveries(trace);
  b.PlanDeliveries(trace);
  // With ~3-5% rates over 240 records two seeds agreeing on every count
  // would be astonishing.
  EXPECT_FALSE(a.counts().dropped == b.counts().dropped &&
               a.counts().corrupted == b.counts().corrupted &&
               a.counts().delayed == b.counts().delayed &&
               a.counts().duplicated == b.counts().duplicated);
}

TEST(FaultInjectorTest, DropProbOneDropsEverything) {
  const mobility::GpsTrace trace = MakeTrace(3, 10);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  FaultInjector injector{plan};
  EXPECT_TRUE(injector.PlanDeliveries(trace).empty());
  EXPECT_EQ(injector.counts().dropped, trace.size());
}

TEST(FaultInjectorTest, DuplicateProbOneDoublesTheSchedule) {
  const mobility::GpsTrace trace = MakeTrace(3, 10);
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  FaultInjector injector{plan};
  const auto schedule = injector.PlanDeliveries(trace);
  ASSERT_EQ(schedule.size(), 2 * trace.size());
  EXPECT_EQ(injector.counts().duplicated, trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_TRUE(SameRecord(schedule[2 * i].record, schedule[2 * i + 1].record));
    EXPECT_EQ(schedule[2 * i + 1].deliver_at,
              schedule[2 * i].deliver_at + 1.0);
  }
}

TEST(FaultInjectorTest, DelayProbOneDelaysDeliveryNotTimestamp) {
  const mobility::GpsTrace trace = MakeTrace(3, 10);
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_s = 450.0;
  FaultInjector injector{plan};
  const auto schedule = injector.PlanDeliveries(trace);
  ASSERT_EQ(schedule.size(), trace.size());
  EXPECT_EQ(injector.counts().delayed, trace.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].deliver_at, trace[i].t + 450.0);
    EXPECT_EQ(schedule[i].record.t, trace[i].t);  // the record itself is clean
  }
}

TEST(FaultInjectorTest, CorruptProbOneHitsEveryRecordWithAllThreeShapes) {
  const mobility::GpsTrace trace = MakeTrace(10, 30);
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  FaultInjector injector{plan};
  const auto schedule = injector.PlanDeliveries(trace);
  ASSERT_EQ(schedule.size(), trace.size());
  EXPECT_EQ(injector.counts().corrupted, trace.size());

  int nan_lat = 0, inf_lon = 0, out_of_box = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const mobility::GpsRecord& r = schedule[i].record;
    if (std::isnan(r.pos.lat)) {
      ++nan_lat;
    } else if (std::isinf(r.pos.lon)) {
      ++inf_lon;
    } else {
      EXPECT_EQ(r.pos.lat, trace[i].pos.lat + 90.0) << i;
      ++out_of_box;
    }
  }
  // All three corruption shapes occur over 300 records.
  EXPECT_GT(nan_lat, 0);
  EXPECT_GT(inf_lon, 0);
  EXPECT_GT(out_of_box, 0);
}

TEST(FaultInjectorTest, ReorderSwapsConsecutivePerPersonDeliveries) {
  const mobility::GpsTrace trace = MakeTrace(2, 6);
  FaultPlan plan;
  plan.reorder_prob = 1.0;
  FaultInjector injector{plan};
  const auto schedule = injector.PlanDeliveries(trace);
  ASSERT_EQ(schedule.size(), trace.size());
  // With prob 1 every record not resolving a pending swap starts one, so
  // per person the 6 records pair up into 3 swaps: 2 people * 3.
  EXPECT_EQ(injector.counts().reordered, 6u);

  // The delivery-time multiset is conserved (reorder permutes, never
  // invents), and at least one person's arrival order is non-monotonic.
  std::multiset<double> original, delivered;
  bool non_monotonic = false;
  double prev_person0 = -1.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    original.insert(trace[i].t);
    delivered.insert(schedule[i].deliver_at);
    if (schedule[i].record.person == 0) {
      if (schedule[i].deliver_at < prev_person0) non_monotonic = true;
      prev_person0 = schedule[i].deliver_at;
    }
  }
  EXPECT_EQ(original, delivered);
  EXPECT_TRUE(non_monotonic);
}

TEST(FaultInjectorTest, KillTicksAreSortedDeduped) {
  FaultPlan plan;
  plan.kill_at_ticks = {97, 5, 97, 42};
  FaultInjector injector{plan};
  EXPECT_TRUE(injector.KillsBeforeTick(5));
  EXPECT_TRUE(injector.KillsBeforeTick(42));
  EXPECT_TRUE(injector.KillsBeforeTick(97));
  EXPECT_FALSE(injector.KillsBeforeTick(0));
  EXPECT_FALSE(injector.KillsBeforeTick(96));
  EXPECT_EQ(injector.plan().kill_at_ticks,
            (std::vector<std::uint64_t>{5, 42, 97}));
}

TEST(FaultInjectorTest, FailureHooksCountAndRespectProbabilityEdges) {
  FaultPlan plan;
  plan.decide_failure_prob = 1.0;
  plan.predictor_failure_prob = 0.0;
  FaultInjector injector{plan};
  EXPECT_TRUE(injector.ShouldFailDecide(300.0));
  EXPECT_TRUE(injector.ShouldFailDecide(600.0));
  EXPECT_FALSE(injector.ShouldFailPrediction(300.0));
  EXPECT_EQ(injector.counts().decide_failures, 2u);
  EXPECT_EQ(injector.counts().predictor_failures, 0u);
}

}  // namespace
}  // namespace mobirescue::serve
