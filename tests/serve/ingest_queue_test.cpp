#include "serve/ingest_queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"

namespace mobirescue::serve {
namespace {

mobility::GpsRecord Rec(mobility::PersonId person, double t) {
  mobility::GpsRecord r;
  r.person = person;
  r.t = t;
  return r;
}

TEST(ShardedIngestQueueTest, ShardOfIsDeterministicAndInRange) {
  for (mobility::PersonId p = 0; p < 1000; ++p) {
    const std::size_t s = ShardedIngestQueue::ShardOf(p, 8);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, ShardedIngestQueue::ShardOf(p, 8));
  }
}

TEST(ShardedIngestQueueTest, ShardOfSpreadsConsecutiveIds) {
  // The mix must not map a contiguous id range onto one shard.
  std::vector<int> per_shard(8, 0);
  for (mobility::PersonId p = 0; p < 800; ++p) {
    ++per_shard[ShardedIngestQueue::ShardOf(p, 8)];
  }
  for (int n : per_shard) EXPECT_GT(n, 0);
}

TEST(ShardedIngestQueueTest, RejectsBadConfig) {
  IngestQueueConfig no_shards;
  no_shards.num_shards = 0;
  EXPECT_THROW(ShardedIngestQueue{no_shards}, std::invalid_argument);
  IngestQueueConfig no_capacity;
  no_capacity.shard_capacity = 0;
  EXPECT_THROW(ShardedIngestQueue{no_capacity}, std::invalid_argument);
}

TEST(ShardedIngestQueueTest, DrainPreservesPerPersonFifo) {
  ShardedIngestQueue queue;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(queue.Push(Rec(7, 10.0 * i)));
    EXPECT_TRUE(queue.Push(Rec(12, 10.0 * i + 1.0)));
  }
  std::vector<mobility::GpsRecord> out;
  EXPECT_EQ(queue.DrainInto(out), 100u);

  std::unordered_map<mobility::PersonId, double> last_t;
  for (const mobility::GpsRecord& r : out) {
    const auto it = last_t.find(r.person);
    if (it != last_t.end()) EXPECT_GT(r.t, it->second);
    last_t[r.person] = r.t;
  }
  EXPECT_EQ(last_t.size(), 2u);
}

TEST(ShardedIngestQueueTest, DropNewestRejectsWhenFull) {
  IngestQueueConfig config;
  config.num_shards = 1;
  config.shard_capacity = 3;
  config.drop_policy = DropPolicy::kDropNewest;
  ShardedIngestQueue queue(config);

  EXPECT_TRUE(queue.Push(Rec(1, 0.0)));
  EXPECT_TRUE(queue.Push(Rec(1, 1.0)));
  EXPECT_TRUE(queue.Push(Rec(1, 2.0)));
  EXPECT_FALSE(queue.Push(Rec(1, 3.0)));  // full: newest rejected

  std::vector<mobility::GpsRecord> out;
  queue.DrainInto(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.back().t, 2.0);

  const IngestCounters c = queue.counters();
  EXPECT_EQ(c.accepted, 3u);
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.drained, 3u);
}

TEST(ShardedIngestQueueTest, DropOldestEvictsHead) {
  IngestQueueConfig config;
  config.num_shards = 1;
  config.shard_capacity = 3;
  config.drop_policy = DropPolicy::kDropOldest;
  ShardedIngestQueue queue(config);

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(Rec(1, i)));

  std::vector<mobility::GpsRecord> out;
  queue.DrainInto(out);
  ASSERT_EQ(out.size(), 3u);
  // The two oldest records (t=0, t=1) were evicted.
  EXPECT_EQ(out[0].t, 2.0);
  EXPECT_EQ(out[1].t, 3.0);
  EXPECT_EQ(out[2].t, 4.0);

  const IngestCounters c = queue.counters();
  EXPECT_EQ(c.accepted, 5u);
  EXPECT_EQ(c.dropped, 2u);
  EXPECT_EQ(c.drained, 3u);
}

TEST(ShardedIngestQueueTest, DepthsReflectQueuedRecords) {
  IngestQueueConfig config;
  config.num_shards = 4;
  ShardedIngestQueue queue(config);
  for (int i = 0; i < 40; ++i) queue.Push(Rec(i, 0.0));

  std::size_t total = 0;
  for (std::size_t d : queue.Depths()) total += d;
  EXPECT_EQ(total, 40u);

  std::vector<mobility::GpsRecord> out;
  queue.DrainInto(out);
  for (std::size_t d : queue.Depths()) EXPECT_EQ(d, 0u);
}

TEST(ShardedIngestQueueTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 2000;
  IngestQueueConfig config;
  config.num_shards = 8;
  config.shard_capacity = kProducers * kPerProducer;  // ample: no drops
  ShardedIngestQueue queue(config);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Each producer owns person ids p, p + kProducers, ... so records
        // of one person come from one thread, in time order.
        queue.Push(Rec(p, 10.0 * i));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  std::vector<mobility::GpsRecord> out;
  EXPECT_EQ(queue.DrainInto(out),
            static_cast<std::size_t>(kProducers * kPerProducer));

  // Per-person order survived the concurrent pushes.
  std::unordered_map<mobility::PersonId, double> last_t;
  for (const mobility::GpsRecord& r : out) {
    const auto it = last_t.find(r.person);
    if (it != last_t.end()) EXPECT_GT(r.t, it->second) << r.person;
    last_t[r.person] = r.t;
  }
  const IngestCounters c = queue.counters();
  EXPECT_EQ(c.accepted, static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(c.dropped, 0u);
}

TEST(ShardedIngestQueueTest, ConcurrentProducersWithDrainer) {
  // Producers push while the consumer drains: nothing is lost, nothing is
  // duplicated (accepted == drained after the final sweep).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  IngestQueueConfig config;
  config.shard_capacity = kProducers * kPerProducer;  // no drops even unpolled
  ShardedIngestQueue queue(config);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.Push(Rec(p, i));
    });
  }
  std::vector<mobility::GpsRecord> out;
  while (out.size() < static_cast<std::size_t>(kProducers * kPerProducer)) {
    queue.DrainInto(out);
  }
  for (std::thread& t : producers) t.join();
  queue.DrainInto(out);

  EXPECT_EQ(out.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  const IngestCounters c = queue.counters();
  EXPECT_EQ(c.accepted, c.drained);
  EXPECT_EQ(c.dropped, 0u);
}

// --- Drop accounting audit (DESIGN.md §13) ---------------------------------

TEST(ShardedIngestQueueTest, DropAccountingSplitsByPolicy) {
  {
    IngestQueueConfig config;
    config.num_shards = 1;
    config.shard_capacity = 2;
    config.drop_policy = DropPolicy::kDropNewest;
    ShardedIngestQueue queue(config);
    for (int i = 0; i < 7; ++i) queue.Push(Rec(1, i));
    const IngestCounters c = queue.counters();
    EXPECT_EQ(c.dropped, 5u);
    EXPECT_EQ(c.dropped_newest, 5u);
    EXPECT_EQ(c.dropped_oldest, 0u);
    // kDropNewest: rejected records were never accepted.
    EXPECT_EQ(c.accepted, 2u);
  }
  {
    IngestQueueConfig config;
    config.num_shards = 1;
    config.shard_capacity = 2;
    config.drop_policy = DropPolicy::kDropOldest;
    ShardedIngestQueue queue(config);
    for (int i = 0; i < 7; ++i) queue.Push(Rec(1, i));
    const IngestCounters c = queue.counters();
    EXPECT_EQ(c.dropped, 5u);
    EXPECT_EQ(c.dropped_oldest, 5u);
    EXPECT_EQ(c.dropped_newest, 0u);
    // kDropOldest: everything was accepted; evictions came later.
    EXPECT_EQ(c.accepted, 7u);
  }
}

TEST(ShardedIngestQueueTest, RegistryCountersMatchAccessorsUnderConcurrency) {
  // The accessor struct and the registry-backed instruments are two views
  // of the same striped atomics; after a concurrent overflow hammering
  // they must agree exactly (and dropped must equal its per-policy split).
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 3000;
  for (const DropPolicy policy :
       {DropPolicy::kDropNewest, DropPolicy::kDropOldest}) {
    // Baseline: any other live queues' contributions (instruments vanish
    // from the snapshot when their queue dies, hence a fresh delta per
    // iteration).
    obs::SnapshotDelta delta(obs::Registry::Global());

    IngestQueueConfig config;
    config.num_shards = 2;
    config.shard_capacity = 64;  // tiny: force heavy drops
    config.drop_policy = policy;
    ShardedIngestQueue queue(config);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&queue, p] {
        for (int i = 0; i < kPerProducer; ++i) queue.Push(Rec(p, i));
      });
    }
    for (std::thread& t : producers) t.join();
    std::vector<mobility::GpsRecord> out;
    queue.DrainInto(out);

    constexpr std::uint64_t kTotal =
        static_cast<std::uint64_t>(kProducers) * kPerProducer;
    const IngestCounters c = queue.counters();
    EXPECT_GT(c.dropped, 0u);
    // The audit identity: every drop is attributed to exactly one policy.
    EXPECT_EQ(c.dropped, c.dropped_newest + c.dropped_oldest);
    if (policy == DropPolicy::kDropNewest) {
      EXPECT_EQ(c.dropped_oldest, 0u);
      EXPECT_EQ(c.accepted + c.dropped, kTotal);
      EXPECT_EQ(c.drained, c.accepted);
    } else {
      EXPECT_EQ(c.dropped_newest, 0u);
      EXPECT_EQ(c.accepted, kTotal);
      EXPECT_EQ(c.drained, c.accepted - c.dropped);
    }
    EXPECT_EQ(out.size(), c.drained);

    // Registry view (while the queue is live): deltas equal the accessors.
    EXPECT_EQ(delta.Delta("serve_ingest_accepted_total"),
              static_cast<double>(c.accepted));
    EXPECT_EQ(delta.Delta("serve_ingest_dropped_total"),
              static_cast<double>(c.dropped));
    EXPECT_EQ(delta.Delta("serve_ingest_dropped_newest_total"),
              static_cast<double>(c.dropped_newest));
    EXPECT_EQ(delta.Delta("serve_ingest_dropped_oldest_total"),
              static_cast<double>(c.dropped_oldest));
    EXPECT_EQ(delta.Delta("serve_ingest_drained_total"),
              static_cast<double>(c.drained));
  }
}

}  // namespace
}  // namespace mobirescue::serve
