// Fault-tolerant serving end to end (DESIGN.md §13):
//   - the all-zero fault plan run through RunFaultedEpisode stays
//     bit-identical to the batch pipeline replay (the PR-3 invariant holds
//     through the fault-injection path),
//   - a chaos plan with mid-episode kills completes the full 288-tick day
//     by restoring from periodic checkpoints, with recovery events visible
//     in the obs registry,
//   - the degradation ladder: an injected Decide() failure or a budget
//     overrun hands the tick to the greedy fallback for the cooldown, and
//     an injected predictor failure keeps serving on the last-known
//     request distribution.
#include "serve/fault_injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/world.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "serve/checkpoint.hpp"
#include "serve/dispatch_service.hpp"
#include "sim/population_tracker.hpp"
#include "sim/request.hpp"

namespace mobirescue::serve {
namespace {

struct DayOutcome {
  std::vector<sim::Request> requests;
  int served = 0;
  int timely = 0;
};

class RecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new core::World(core::BuildWorld(core::WorldConfig::Small()));
    svm_ = core::TrainSvmPredictor(*world_).release();
    core::TrainingConfig training;
    training.episodes = 6;
    training.sim.num_teams = 20;
    agent_ = core::TrainAgent(*world_, *svm_, training);
  }
  static void TearDownTestSuite() {
    delete svm_;
    delete world_;
    agent_.reset();
  }

  static sim::SimConfig SimCfg() {
    sim::SimConfig config;
    config.num_teams = 20;
    return config;
  }

  static int EvalDay() { return world_->eval.spec.eval_day; }
  static double DayOffset() { return EvalDay() * util::kSecondsPerDay; }

  static sim::RescueSimulator MakeSimulator() {
    return sim::RescueSimulator(
        *world_->city, *world_->eval.flood,
        sim::RequestsFromEvents(world_->eval.trace.rescues, EvalDay()),
        DayOffset(), SimCfg());
  }

  static mobility::GpsTrace DayTrace() {
    return sim::DaySlice(world_->eval.trace.records, EvalDay());
  }

  static DayOutcome Outcome(const sim::RescueSimulator& simulator) {
    DayOutcome out;
    out.requests = simulator.requests();
    out.served = simulator.metrics().total_served();
    out.timely = simulator.metrics().total_timely();
    return out;
  }

  static DayOutcome RunBatch() {
    sim::PopulationTracker tracker(DayTrace());
    dispatch::MobiRescueDispatcher dispatcher(*world_->city, *svm_, tracker,
                                              *world_->index, agent_,
                                              DayOffset());
    sim::RescueSimulator simulator = MakeSimulator();
    simulator.Run(dispatcher);
    return Outcome(simulator);
  }

  static ServiceConfig BaseServiceConfig() {
    ServiceConfig config;
    config.queue.shard_capacity = 1 << 15;
    return config;
  }

  static void ExpectIdentical(const DayOutcome& a, const DayOutcome& b) {
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.timely, b.timely);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      const sim::Request& ra = a.requests[i];
      const sim::Request& rb = b.requests[i];
      EXPECT_EQ(ra.status, rb.status) << "request " << i;
      EXPECT_EQ(ra.served_by_team, rb.served_by_team) << "request " << i;
      EXPECT_EQ(ra.pickup_time, rb.pickup_time) << "request " << i;
      EXPECT_EQ(ra.delivery_time, rb.delivery_time) << "request " << i;
    }
  }

  static core::World* world_;
  static predict::SvmRequestPredictor* svm_;
  static std::shared_ptr<rl::DqnAgent> agent_;
};

core::World* RecoveryTest::world_ = nullptr;
predict::SvmRequestPredictor* RecoveryTest::svm_ = nullptr;
std::shared_ptr<rl::DqnAgent> RecoveryTest::agent_ = nullptr;

TEST_F(RecoveryTest, ZeroFaultPlanPreservesBatchBitIdentity) {
  // The acceptance gate for the whole fault layer: with every fault off,
  // RunFaultedEpisode is just the streamed service, and streamed == batch.
  const DayOutcome batch = RunBatch();
  EXPECT_FALSE(batch.requests.empty());
  EXPECT_GT(batch.served, 0);

  FaultInjector injector{FaultPlan{}};
  sim::RescueSimulator simulator = MakeSimulator();
  FaultedEpisodeOutcome outcome = RunFaultedEpisode(
      simulator, DayTrace(), injector,
      [](const ServiceCheckpoint* ckpt) -> std::unique_ptr<DispatchService> {
        EXPECT_EQ(ckpt, nullptr);  // no kills on the identity plan
        return std::make_unique<DispatchService>(*world_->city, *world_->index,
                                                 *svm_, agent_, DayOffset(),
                                                 BaseServiceConfig());
      });

  EXPECT_EQ(outcome.ticks, 288u);
  EXPECT_EQ(outcome.kills, 0u);
  ExpectIdentical(batch, Outcome(simulator));

  const ServiceMetrics metrics = outcome.service->metrics();
  EXPECT_EQ(metrics.state.quarantined(), 0u);
  EXPECT_EQ(metrics.fallback_ticks, 0u);
  EXPECT_EQ(metrics.recoveries, 0u);
}

TEST_F(RecoveryTest, KillMidEpisodeRestoresFromCheckpointAndFinishes) {
  const std::string ckpt_path =
      std::string(::testing::TempDir()) + "recovery_test_ckpt.txt";

  FaultPlan plan = FaultPlan::Chaos(991);
  plan.kill_at_ticks = {97, 193};
  FaultInjector injector{plan};

  // The factory owns keeping restored models alive for the service's
  // lifetime (the outcome's service outlives this lambda).
  auto restored_svms =
      std::make_shared<std::vector<std::unique_ptr<predict::SvmRequestPredictor>>>();
  auto restored_agents = std::make_shared<std::vector<std::shared_ptr<rl::DqnAgent>>>();

  obs::SnapshotDelta registry_delta(obs::Registry::Global());

  sim::RescueSimulator simulator = MakeSimulator();
  FaultedEpisodeConfig episode;
  episode.checkpoint_every_n_ticks = 16;
  episode.checkpoint_path = ckpt_path;
  FaultedEpisodeOutcome outcome = RunFaultedEpisode(
      simulator, DayTrace(), injector,
      [&](const ServiceCheckpoint* ckpt) -> std::unique_ptr<DispatchService> {
        ServiceConfig config = BaseServiceConfig();
        config.decide_chaos = [&injector](util::SimTime now) {
          if (injector.ShouldFailDecide(now)) {
            throw std::runtime_error("injected decide failure");
          }
        };
        dispatch::MobiRescueConfig mr;
        mr.prediction_chaos = [&injector](double now) {
          if (injector.ShouldFailPrediction(now)) {
            throw std::runtime_error("injected predictor failure");
          }
        };
        if (ckpt == nullptr) {
          return std::make_unique<DispatchService>(
              *world_->city, *world_->index, *svm_, agent_, DayOffset(),
              config, mr);
        }
        restored_agents->push_back(RestoreAgent(*ckpt));
        restored_svms->push_back(
            RestorePredictor(*ckpt, *world_->train.factors));
        return std::make_unique<DispatchService>(
            *world_->city, *world_->index, *restored_svms->back(),
            restored_agents->back(), DayOffset(), config, mr);
      },
      episode);

  // The day completes despite two kills: the restored services resume from
  // the checkpoint tick count and keep ticking to 288.
  EXPECT_EQ(outcome.ticks, 288u);
  EXPECT_EQ(outcome.kills, 2u);
  EXPECT_EQ(injector.counts().kills, 2u);
  EXPECT_GT(outcome.checkpoints_written, 0u);
  // Each kill loses the ticks performed since the last checkpoint from the
  // replacement's lifetime counter (those simulator rounds already ran and
  // are not replayed), so the survivor accounts for nearly — not exactly —
  // the full day.
  EXPECT_LE(outcome.service->lifetime_ticks(), 288u);
  EXPECT_GE(outcome.service->lifetime_ticks(),
            288u - plan.kill_at_ticks.size() * episode.checkpoint_every_n_ticks);

  const ServiceMetrics metrics = outcome.service->metrics();
  // The surviving instance performed the second recovery.
  EXPECT_GE(metrics.recoveries, 1u);
  // The chaos plan's corrupt records were quarantined, not applied.
  EXPECT_GT(metrics.state.quarantined(), 0u);
  // Injected decide failures ran the fallback ladder.
  EXPECT_GT(injector.counts().decide_failures, 0u);
  EXPECT_GT(injector.counts().predictor_failures, 0u);

  // The recovery and quarantine events surface in the obs registry (what a
  // /metrics scrape of the real service would show). Only the surviving
  // instance's instruments are live, so the registry shows its 1 recovery,
  // not the full kill count.
  EXPECT_GE(registry_delta.Delta("serve_recoveries_total"), 1.0);
  EXPECT_GT(registry_delta.Delta("serve_quarantined_total"), 0.0);

  // And the requests were actually handled: the episode produced a full
  // day's worth of terminal request states.
  EXPECT_FALSE(simulator.requests().empty());
}

TEST_F(RecoveryTest, KillsWithoutCheckpointingAreSkipped) {
  FaultPlan plan;  // no record faults: keep it cheap
  plan.kill_at_ticks = {10};
  FaultInjector injector{plan};
  sim::RescueSimulator simulator = MakeSimulator();
  FaultedEpisodeOutcome outcome = RunFaultedEpisode(
      simulator, DayTrace(), injector,
      [](const ServiceCheckpoint*) {
        return std::make_unique<DispatchService>(*world_->city, *world_->index,
                                                 *svm_, agent_, DayOffset(),
                                                 BaseServiceConfig());
      });
  // No checkpoint cadence configured -> nothing to restore from -> the
  // kill tick is a no-op and the episode runs through.
  EXPECT_EQ(outcome.ticks, 288u);
  EXPECT_EQ(outcome.kills, 0u);
  EXPECT_EQ(outcome.checkpoints_written, 0u);
}

TEST_F(RecoveryTest, DecideFailureFallsBackForTheCooldown) {
  ServiceConfig config = BaseServiceConfig();
  config.degraded_cooldown_ticks = 4;
  int failures_armed = 1;
  config.decide_chaos = [&failures_armed](util::SimTime) {
    if (failures_armed > 0) {
      --failures_armed;
      throw std::runtime_error("injected decide failure");
    }
  };
  DispatchService service(*world_->city, *world_->index, *svm_, agent_,
                          DayOffset(), config);
  sim::RescueSimulator simulator = MakeSimulator();
  TraceStreamer streamer(DayTrace(), service);
  service.ServeEpisode(simulator, &streamer);

  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.ticks, 288u);
  EXPECT_EQ(metrics.decide_errors, 1u);
  // The failing tick plus the cooldown ticks all served on the fallback.
  EXPECT_EQ(metrics.fallback_ticks, 5u);
  EXPECT_FALSE(metrics.degraded);  // cooldown long since expired
  // Every round still got a decision; the day finished.
  EXPECT_FALSE(simulator.requests().empty());
}

TEST_F(RecoveryTest, BudgetOverrunDegradesToFallback) {
  ServiceConfig config = BaseServiceConfig();
  config.decide_budget_ms = 1e-9;  // everything overruns
  config.degraded_cooldown_ticks = 3;
  DispatchService service(*world_->city, *world_->index, *svm_, agent_,
                          DayOffset(), config);
  sim::RescueSimulator simulator = MakeSimulator();
  TraceStreamer streamer(DayTrace(), service);
  service.ServeEpisode(simulator, &streamer);

  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.ticks, 288u);
  EXPECT_GT(metrics.budget_overruns, 0u);
  EXPECT_GT(metrics.fallback_ticks, 0u);
  // The primary runs each time cooldown expires, overruns again, and hands
  // the next ticks back to the fallback: both dispatchers alternate.
  EXPECT_LT(metrics.fallback_ticks, 288u);
}

TEST_F(RecoveryTest, PredictorFailureKeepsLastKnownDistribution) {
  // Degradation ladder rung 1, tested at the dispatcher level: once the
  // predictor starts throwing, Decide() keeps serving on the last cached
  // {ñ_e} distribution instead of propagating the failure.
  sim::PopulationTracker tracker(DayTrace());
  dispatch::MobiRescueConfig mr;
  bool fail_predictions = false;
  mr.prediction_chaos = [&fail_predictions](double) {
    if (fail_predictions) {
      throw std::runtime_error("injected predictor failure");
    }
  };
  dispatch::MobiRescueDispatcher dispatcher(*world_->city, *svm_, tracker,
                                            *world_->index, agent_,
                                            DayOffset(), mr);
  sim::RescueSimulator simulator = MakeSimulator();
  sim::DispatchContext ctx;
  std::uint64_t rounds = 0;
  predict::Distribution last_good;
  while (simulator.NextRound(dispatcher, &ctx)) {
    simulator.SubmitDecision(dispatcher.Decide(ctx));
    ++rounds;
    // Let refreshes succeed until one produces a non-empty distribution
    // (midnight snapshots can legitimately predict nothing), then fail
    // every subsequent refresh.
    if (!fail_predictions && !dispatcher.predicted_distribution().empty()) {
      last_good = dispatcher.predicted_distribution();
      fail_predictions = true;
    }
  }
  EXPECT_EQ(rounds, 288u);
  ASSERT_TRUE(fail_predictions);  // some refresh predicted demand
  EXPECT_GT(dispatcher.prediction_failures(), 0u);
  // The last successful refresh's prediction is still being served,
  // untouched by the failed refreshes that followed it.
  EXPECT_EQ(dispatcher.predicted_distribution(), last_good);
  EXPECT_FALSE(dispatcher.predicted_distribution().empty());
  EXPECT_FALSE(simulator.requests().empty());
}

}  // namespace
}  // namespace mobirescue::serve
