// Region-sharded StreamState (DESIGN.md §17): for every shard count and
// worker count, the sharded ApplyBatch path must leave *bit-identical*
// state to the classic single-state path — latest positions, quarantine
// counters, flow counts, and the exported crash-recovery bytes — because
// matching is per-record independent and flow dedup is order-independent.
// Also audits the ingest queue's splitmix64 person sharding at 1M strictly
// sequential ids (the adversarial id distribution for a multiplicative mix).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "dispatch/simple_dispatchers.hpp"
#include "roadnet/city_builder.hpp"
#include "roadnet/spatial_index.hpp"
#include "serve/dispatch_service.hpp"
#include "serve/ingest_queue.hpp"
#include "serve/stream_state.hpp"
#include "util/rng.hpp"

namespace mobirescue::serve {
namespace {

class RegionShardTest : public ::testing::Test {
 protected:
  RegionShardTest() {
    roadnet::CityConfig config;
    config.grid_width = 10;
    config.grid_height = 10;
    city_ = roadnet::BuildCity(config);
    index_ = std::make_unique<roadnet::SpatialIndex>(city_.network, city_.box);
  }

  StreamStateConfig ShardedConfig(int shards, int workers = 0) const {
    StreamStateConfig cfg;
    cfg.accept_box = city_.box;
    cfg.shards = shards;
    cfg.shard_workers = workers;
    return cfg;
  }

  /// Random day: per-person strictly increasing timestamps, positions all
  /// over the box (some too far from any segment — the unmatched path),
  /// interleaved across people by global time sort.
  mobility::GpsTrace RandomTrace(int people, int per_person,
                                 std::uint64_t seed) const {
    util::Rng rng(seed);
    mobility::GpsTrace trace;
    trace.reserve(static_cast<std::size_t>(people) * per_person);
    for (int p = 0; p < people; ++p) {
      for (int k = 0; k < per_person; ++k) {
        mobility::GpsRecord r;
        r.person = p;
        r.t = 300.0 * k + rng.Uniform(0.0, 100.0);
        r.pos = city_.box.At(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
        r.altitude_m = rng.Uniform(0.0, 120.0);
        r.speed_mps = rng.Uniform(0.0, 25.0);
        trace.push_back(r);
      }
    }
    std::sort(trace.begin(), trace.end(),
              [](const mobility::GpsRecord& a, const mobility::GpsRecord& b) {
                return a.t < b.t;
              });
    return trace;
  }

  /// Feeds a trace through ApplyBatch in uneven chunks (the drain pattern).
  static void Feed(StreamState& state, const mobility::GpsTrace& trace) {
    std::size_t i = 0;
    while (i < trace.size()) {
      const std::size_t n = std::min<std::size_t>(997, trace.size() - i);
      state.ApplyBatch(trace.data() + i, n);
      i += n;
    }
  }

  /// Full bit-identity check between two states over the same input.
  void ExpectSameState(const StreamState& a, const StreamState& b) {
    const auto la = a.ExportLatest();
    const auto lb = b.ExportLatest();
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i].person, lb[i].person) << "latest " << i;
      ASSERT_EQ(la[i].t, lb[i].t) << "latest " << i;
      ASSERT_EQ(la[i].pos.lat, lb[i].pos.lat) << "latest " << i;
      ASSERT_EQ(la[i].pos.lon, lb[i].pos.lon) << "latest " << i;
      ASSERT_EQ(la[i].speed_mps, lb[i].speed_mps) << "latest " << i;
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ca, cb;
    std::vector<std::uint64_t> sa, sb;
    a.ExportFlowState(&ca, &sa);
    b.ExportFlowState(&cb, &sb);
    ASSERT_EQ(ca, cb);
    ASSERT_EQ(sa, sb);
    EXPECT_EQ(a.counters().applied, b.counters().applied);
    EXPECT_EQ(a.counters().matched, b.counters().matched);
    EXPECT_EQ(a.counters().unmatched, b.counters().unmatched);
    EXPECT_EQ(a.counters().quarantined_non_finite,
              b.counters().quarantined_non_finite);
    EXPECT_EQ(a.counters().quarantined_out_of_box,
              b.counters().quarantined_out_of_box);
    EXPECT_EQ(a.counters().quarantined_stale, b.counters().quarantined_stale);
    EXPECT_EQ(a.num_people_seen(), b.num_people_seen());
    // The merged flow mirror answers reads identically to the single path.
    for (const roadnet::RoadSegment& seg : city_.network.segments()) {
      for (int h = 0; h < a.flows().total_hours(); ++h) {
        ASSERT_EQ(a.flows().SegmentFlow(seg.id, h),
                  b.flows().SegmentFlow(seg.id, h))
            << "segment " << seg.id << " hour " << h;
      }
    }
  }

  roadnet::City city_;
  std::unique_ptr<roadnet::SpatialIndex> index_;
};

TEST_F(RegionShardTest, ShardedStateBitIdenticalToSingle) {
  const mobility::GpsTrace trace = RandomTrace(3000, 8, 99);
  StreamState single(city_.network, *index_, ShardedConfig(1));
  Feed(single, trace);
  ASSERT_GT(single.counters().matched, 0u);
  ASSERT_GT(single.counters().unmatched, 0u);  // both branches exercised
  for (const int shards : {2, 6, 8}) {
    StreamState sharded(city_.network, *index_, ShardedConfig(shards));
    ASSERT_EQ(sharded.num_shards(), shards);
    Feed(sharded, trace);
    ExpectSameState(single, sharded);
  }
}

TEST_F(RegionShardTest, QuarantineParityUnderFaultyInput) {
  // Inject every rejection class; the sharded path's phase A must
  // quarantine the exact same records as the single path.
  mobility::GpsTrace trace = RandomTrace(400, 10, 7);
  util::Rng rng(13);
  const std::size_t clean = trace.size();
  for (int i = 0; i < 200; ++i) {
    mobility::GpsRecord r = trace[rng.Index(clean)];
    switch (i % 4) {
      case 0:
        r.t = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        r.pos.lat = std::numeric_limits<double>::infinity();
        break;
      case 2:
        r.pos.lat = city_.box.south_west.lat - 1.0;  // out of accept box
        break;
      case 3:
        r.t = -5.0;  // older than the person's first record: stale
        break;
    }
    trace.push_back(r);
  }
  StreamState single(city_.network, *index_, ShardedConfig(1));
  StreamState sharded(city_.network, *index_, ShardedConfig(6));
  Feed(single, trace);
  Feed(sharded, trace);
  ASSERT_GT(single.counters().quarantined_non_finite, 0u);
  ASSERT_GT(single.counters().quarantined_out_of_box, 0u);
  ASSERT_GT(single.counters().quarantined_stale, 0u);
  ExpectSameState(single, sharded);
}

TEST_F(RegionShardTest, WorkerThreadsDoNotChangeResults) {
  // Segment ownership makes per-shard flow cells disjoint, so the
  // threaded match/ingest phases must be bit-identical to inline.
  const mobility::GpsTrace trace = RandomTrace(2000, 6, 2025);
  StreamState inline_state(city_.network, *index_, ShardedConfig(8, 0));
  StreamState threaded(city_.network, *index_, ShardedConfig(8, 3));
  Feed(inline_state, trace);
  Feed(threaded, trace);
  ExpectSameState(inline_state, threaded);
}

TEST_F(RegionShardTest, ExportRestoreRoundTripsAcrossShardCounts) {
  const mobility::GpsTrace part1 = RandomTrace(1200, 5, 41);
  const mobility::GpsTrace part2 = RandomTrace(1200, 5, 42);

  // Oracle: a single-shard state that lived through both parts. part2's
  // timestamps overlap part1's, so replay them as one time-sorted stream
  // (per-person order must hold across the restore boundary).
  mobility::GpsTrace all = part1;
  all.insert(all.end(), part2.begin(), part2.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const mobility::GpsRecord& a,
                      const mobility::GpsRecord& b) { return a.t < b.t; });
  const std::size_t half = all.size() / 2;

  StreamState oracle(city_.network, *index_, ShardedConfig(1));
  Feed(oracle, all);

  // A 6-shard state sees the first half, exports, and its bytes restore
  // into a 4-shard and a single state; both finish the second half and
  // must land exactly on the oracle.
  StreamState exporter(city_.network, *index_, ShardedConfig(6));
  exporter.ApplyBatch(all.data(), half);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> cells;
  std::vector<std::uint64_t> seen;
  exporter.ExportFlowState(&cells, &seen);
  const auto latest = exporter.ExportLatest();

  for (const int shards : {4, 1}) {
    StreamState restored(city_.network, *index_, ShardedConfig(shards));
    restored.Restore(latest, exporter.counters(), cells, seen);
    restored.ApplyBatch(all.data() + half, all.size() - half);
    ExpectSameState(oracle, restored);
  }
}

TEST_F(RegionShardTest, SequentialPersonIdsBalanceAtMillionScale) {
  // The balance audit (DESIGN.md §17): strictly sequential person ids are
  // the adversarial input for a multiplicative hash. splitmix64 sharding
  // must keep max/mean cumulative accepted within ~1% of even at 1M
  // people over 16 shards (multinomial sigma there is ~0.4% of the mean).
  IngestQueueConfig config;
  config.num_shards = 16;
  config.shard_capacity = 8192;
  ShardedIngestQueue queue(config);
  EXPECT_EQ(queue.ShardImbalance(), 0.0);  // defined before any record

  std::vector<mobility::GpsRecord> drained;
  mobility::GpsRecord r;
  r.pos = city_.box.Center();
  constexpr int kPeople = 1'000'000;
  for (int person = 0; person < kPeople; ++person) {
    r.person = person;
    r.t = static_cast<double>(person);
    ASSERT_TRUE(queue.Push(r));
    if (person % 50'000 == 49'999) {
      drained.clear();
      queue.DrainInto(drained);
    }
  }
  drained.clear();
  queue.DrainInto(drained);

  const auto accepted = queue.ShardAccepted();
  ASSERT_EQ(accepted.size(), 16u);
  std::uint64_t total = 0;
  std::uint64_t max_shard = 0;
  std::uint64_t min_shard = UINT64_MAX;
  for (const std::uint64_t a : accepted) {
    total += a;
    max_shard = std::max(max_shard, a);
    min_shard = std::min(min_shard, a);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kPeople));
  EXPECT_EQ(queue.counters().accepted, static_cast<std::uint64_t>(kPeople));
  EXPECT_EQ(queue.counters().dropped, 0u);
  const double mean = static_cast<double>(total) / 16.0;
  EXPECT_LE(static_cast<double>(max_shard) / mean, 1.02)
      << "max " << max_shard << " mean " << mean;
  EXPECT_GE(static_cast<double>(min_shard) / mean, 0.98)
      << "min " << min_shard << " mean " << mean;
  EXPECT_LE(queue.ShardImbalance(), 1.02);
  EXPECT_GT(queue.ShardImbalance(), 0.99);
}

TEST_F(RegionShardTest, ServiceLevelShardingIsInvisible) {
  // Two baseline services, one with an 8-way sharded state: after
  // ingesting the same day and advancing to the same watermark, their
  // derived states are bit-identical and the imbalance gauge is live.
  const mobility::GpsTrace trace = RandomTrace(300, 20, 321);
  ServiceConfig plain;
  ServiceConfig sharded;
  sharded.state.shards = 8;

  DispatchService service_plain(
      city_, *index_,
      std::make_unique<dispatch::GreedyNearestDispatcher>(city_), plain);
  DispatchService service_sharded(
      city_, *index_,
      std::make_unique<dispatch::GreedyNearestDispatcher>(city_), sharded);

  service_plain.IngestBatch(trace);
  service_sharded.IngestBatch(trace);
  const double end = trace.back().t + 1.0;
  service_plain.AdvanceStateTo(end);
  service_sharded.AdvanceStateTo(end);

  ExpectSameState(service_plain.state(), service_sharded.state());
  const ServiceMetrics m = service_sharded.metrics();
  EXPECT_GT(m.shard_imbalance, 0.0);
  EXPECT_LE(m.shard_imbalance, 2.0);  // 300 people over 8 shards is lumpy
  EXPECT_EQ(m.state.applied, trace.size());
}

}  // namespace
}  // namespace mobirescue::serve
