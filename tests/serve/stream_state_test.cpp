#include "serve/stream_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "roadnet/city_builder.hpp"
#include "roadnet/spatial_index.hpp"

namespace mobirescue::serve {
namespace {

class StreamStateTest : public ::testing::Test {
 protected:
  StreamStateTest() {
    roadnet::CityConfig config;
    config.grid_width = 6;
    config.grid_height = 6;
    city_ = roadnet::BuildCity(config);
    index_ = std::make_unique<roadnet::SpatialIndex>(city_.network, city_.box);
  }

  /// A moving record pinned to a landmark's position (always matchable).
  mobility::GpsRecord At(mobility::PersonId p, double t,
                         roadnet::LandmarkId lm,
                         double speed = 10.0) const {
    mobility::GpsRecord r;
    r.person = p;
    r.t = t;
    r.pos = city_.network.landmark(lm).pos;
    r.speed_mps = speed;
    return r;
  }

  /// A synthetic day: people hop between landmarks, pinging every few
  /// minutes; per-person timestamps strictly increase.
  mobility::GpsTrace SyntheticDay(int people = 12, int pings = 40) const {
    mobility::GpsTrace trace;
    const std::size_t n = city_.network.num_landmarks();
    for (int p = 0; p < people; ++p) {
      for (int i = 0; i < pings; ++i) {
        const auto lm = static_cast<roadnet::LandmarkId>(
            (static_cast<std::size_t>(p) * 31 + static_cast<std::size_t>(i) * 7) % n);
        trace.push_back(At(p, 120.0 * i + p, lm, i % 3 == 0 ? 0.0 : 9.0));
      }
    }
    std::sort(trace.begin(), trace.end(),
              [](const mobility::GpsRecord& a, const mobility::GpsRecord& b) {
                return a.t < b.t;
              });
    return trace;
  }

  roadnet::City city_;
  std::unique_ptr<roadnet::SpatialIndex> index_;
};

TEST_F(StreamStateTest, TracksLatestPositionPerPerson) {
  StreamState state(city_.network, *index_);
  state.Apply(At(1, 0.0, 0));
  state.Apply(At(1, 60.0, 3));
  state.Apply(At(2, 30.0, 5));

  const auto& snap = state.Snapshot(60.0);
  ASSERT_EQ(snap.size(), 2u);
  std::unordered_map<mobility::PersonId, mobility::GpsRecord> by_person;
  for (const auto& r : snap) by_person[r.person] = r;
  EXPECT_DOUBLE_EQ(by_person.at(1).t, 60.0);
  EXPECT_DOUBLE_EQ(by_person.at(2).t, 30.0);
  EXPECT_EQ(state.num_people_seen(), 2u);
}

TEST_F(StreamStateTest, SnapshotContentMatchesBatchTracker) {
  const mobility::GpsTrace trace = SyntheticDay();
  sim::PopulationTracker batch(trace);

  StreamState streamed(city_.network, *index_);
  std::size_t cursor = 0;
  for (double t : {600.0, 1800.0, 3600.0, 5400.0}) {
    while (cursor < trace.size() && trace[cursor].t <= t) {
      streamed.Apply(trace[cursor]);
      ++cursor;
    }
    const auto& a = batch.Snapshot(t);
    const auto& b = streamed.Snapshot(t);
    ASSERT_EQ(a.size(), b.size()) << "t=" << t;

    // Same content keyed by person (row order is implementation detail).
    std::unordered_map<mobility::PersonId, mobility::GpsRecord> want;
    for (const auto& r : a) want[r.person] = r;
    for (const auto& r : b) {
      const auto it = want.find(r.person);
      ASSERT_NE(it, want.end()) << "person " << r.person;
      EXPECT_DOUBLE_EQ(r.t, it->second.t);
      EXPECT_DOUBLE_EQ(r.pos.lat, it->second.pos.lat);
      EXPECT_DOUBLE_EQ(r.pos.lon, it->second.pos.lon);
      EXPECT_DOUBLE_EQ(r.speed_mps, it->second.speed_mps);
    }
  }
}

TEST_F(StreamStateTest, IncrementalFlowsMatchBatchAnalyzer) {
  const mobility::GpsTrace trace = SyntheticDay();

  // Batch path: match the whole trace, ingest once.
  mobility::MapMatcher matcher(city_.network, *index_);
  mobility::FlowRateAnalyzer batch(city_.network, 24);
  batch.Ingest(matcher.MatchTrace(trace));

  // Streamed path: one record at a time, in time order.
  StreamState streamed(city_.network, *index_);
  streamed.ApplyAll(trace);

  for (std::size_t seg = 0; seg < city_.network.num_segments(); ++seg) {
    for (int h = 0; h < 24; ++h) {
      ASSERT_DOUBLE_EQ(
          streamed.flows().SegmentFlow(static_cast<roadnet::SegmentId>(seg), h),
          batch.SegmentFlow(static_cast<roadnet::SegmentId>(seg), h))
          << "seg=" << seg << " hour=" << h;
    }
  }
}

TEST_F(StreamStateTest, CountsUnmatchedRecords) {
  mobility::MatchConfig strict;
  strict.max_match_distance_m = 1.0;
  StreamStateConfig config;
  config.match = strict;
  StreamState state(city_.network, *index_, config);

  mobility::GpsRecord far = At(1, 0.0, 0);
  far.pos.lat += 1.0;
  far.pos.lon += 1.0;
  state.Apply(far);
  state.Apply(At(2, 10.0, 0));

  const StreamStateCounters& c = state.counters();
  EXPECT_EQ(c.applied, 2u);
  EXPECT_EQ(c.matched, 1u);
  EXPECT_EQ(c.unmatched, 1u);
  // Unmatched records still update the person's latest position.
  EXPECT_EQ(state.Snapshot(10.0).size(), 2u);
}

// --- Quarantine (DESIGN.md §13) --------------------------------------------

TEST_F(StreamStateTest, QuarantinesNonFiniteRecords) {
  StreamState state(city_.network, *index_);

  mobility::GpsRecord nan_lat = At(1, 0.0, 0);
  nan_lat.pos.lat = std::numeric_limits<double>::quiet_NaN();
  mobility::GpsRecord inf_lon = At(2, 1.0, 0);
  inf_lon.pos.lon = std::numeric_limits<double>::infinity();
  mobility::GpsRecord nan_speed = At(3, 2.0, 0);
  nan_speed.speed_mps = std::numeric_limits<double>::quiet_NaN();
  mobility::GpsRecord nan_t = At(4, 3.0, 0);
  nan_t.t = std::numeric_limits<double>::quiet_NaN();

  for (const auto& r : {nan_lat, inf_lon, nan_speed, nan_t}) state.Apply(r);
  state.Apply(At(5, 4.0, 0));  // one clean record

  const StreamStateCounters& c = state.counters();
  EXPECT_EQ(c.quarantined_non_finite, 4u);
  EXPECT_EQ(c.quarantined(), 4u);
  EXPECT_EQ(c.applied, 1u);
  // Quarantined records never reach the latest-position state.
  EXPECT_EQ(state.num_people_seen(), 1u);
}

TEST_F(StreamStateTest, QuarantinesOutOfBoxWhenBoxConfigured) {
  StreamStateConfig config;
  config.accept_box = city_.box;
  StreamState state(city_.network, *index_, config);

  mobility::GpsRecord inside = At(1, 0.0, 0);
  mobility::GpsRecord outside = At(2, 1.0, 0);
  outside.pos.lat += 90.0;
  state.Apply(inside);
  state.Apply(outside);

  EXPECT_EQ(state.counters().applied, 1u);
  EXPECT_EQ(state.counters().quarantined_out_of_box, 1u);
  EXPECT_EQ(state.num_people_seen(), 1u);
}

TEST_F(StreamStateTest, QuarantinesStaleButAcceptsEqualTimestamps) {
  StreamState state(city_.network, *index_);
  state.Apply(At(1, 100.0, 0));
  // Strictly older: stale, the newer position survives.
  state.Apply(At(1, 50.0, 3));
  EXPECT_EQ(state.counters().quarantined_stale, 1u);
  EXPECT_EQ(state.Snapshot(100.0)[0].t, 100.0);

  // Equal timestamp: overwrite, NOT quarantine — the batch tracker's
  // stable-sort "latest wins" semantics (bit-identity depends on this).
  const mobility::GpsRecord equal_t = At(1, 100.0, 5);
  state.Apply(equal_t);
  EXPECT_EQ(state.counters().quarantined_stale, 1u);
  EXPECT_EQ(state.counters().applied, 2u);
  const auto& snap = state.Snapshot(100.0);
  EXPECT_EQ(snap[0].pos.lat, equal_t.pos.lat);
  EXPECT_EQ(snap[0].pos.lon, equal_t.pos.lon);
}

TEST_F(StreamStateTest, ValidationOffTrustsInput) {
  StreamStateConfig config;
  config.validate = false;
  config.accept_box = city_.box;
  StreamState state(city_.network, *index_, config);

  mobility::GpsRecord nan_lat = At(1, 0.0, 0);
  nan_lat.pos.lat = std::numeric_limits<double>::quiet_NaN();
  state.Apply(nan_lat);
  state.Apply(At(2, 1.0, 0));
  state.Apply(At(2, 0.5, 3));  // out of order, trusted anyway

  EXPECT_EQ(state.counters().quarantined(), 0u);
  EXPECT_EQ(state.counters().applied, 3u);
}

TEST_F(StreamStateTest, ExportRestoreRoundTrip) {
  // Build two states over the same network; run a day through the first,
  // export, restore into the second: snapshots, counters and flow counts
  // must all carry over (this is what crash recovery replays onto).
  const mobility::GpsTrace trace = SyntheticDay();
  StreamState original(city_.network, *index_);
  original.ApplyAll(trace);

  std::vector<mobility::GpsRecord> latest = original.ExportLatest();
  // ExportLatest is sorted by person (deterministic checkpoint bytes).
  for (std::size_t i = 1; i < latest.size(); ++i) {
    EXPECT_LT(latest[i - 1].person, latest[i].person);
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> cells;
  std::vector<std::uint64_t> seen;
  original.ExportFlowState(&cells, &seen);

  StreamState restored(city_.network, *index_);
  restored.Restore(latest, original.counters(), cells, seen);

  EXPECT_EQ(restored.num_people_seen(), original.num_people_seen());
  EXPECT_EQ(restored.counters().applied, original.counters().applied);
  const double t = trace.back().t;
  ASSERT_EQ(restored.Snapshot(t).size(), original.Snapshot(t).size());
  for (std::size_t seg = 0; seg < city_.network.num_segments(); ++seg) {
    for (int h = 0; h < 24; ++h) {
      ASSERT_DOUBLE_EQ(
          restored.flows().SegmentFlow(static_cast<roadnet::SegmentId>(seg), h),
          original.flows().SegmentFlow(static_cast<roadnet::SegmentId>(seg), h))
          << "seg=" << seg << " hour=" << h;
    }
  }

  // The flow dedup state restored too: re-applying an already-counted
  // record must not double-count anywhere (crash recovery replays records
  // that overlap the checkpoint).
  const int hour = static_cast<int>(trace.back().t / 3600.0);
  std::vector<double> before;
  for (std::size_t seg = 0; seg < city_.network.num_segments(); ++seg) {
    before.push_back(
        restored.flows().SegmentFlow(static_cast<roadnet::SegmentId>(seg), hour));
  }
  restored.Apply(trace.back());
  for (std::size_t seg = 0; seg < city_.network.num_segments(); ++seg) {
    EXPECT_DOUBLE_EQ(
        restored.flows().SegmentFlow(static_cast<roadnet::SegmentId>(seg), hour),
        before[seg])
        << "seg=" << seg;
  }
}

TEST_F(StreamStateTest, RestoreRejectsCorruptFlowState) {
  StreamState state(city_.network, *index_);
  const std::vector<mobility::GpsRecord> empty_latest;
  const StreamStateCounters counters;

  // Cell index past the dense count table.
  EXPECT_THROW(
      state.Restore(empty_latest, counters, {{1u << 30, 1}}, {}),
      std::runtime_error);
  // Duplicate cell entries.
  EXPECT_THROW(state.Restore(empty_latest, counters, {{3, 1}, {3, 2}}, {}),
               std::runtime_error);
  // Duplicate dedup keys.
  EXPECT_THROW(state.Restore(empty_latest, counters, {}, {7, 7}),
               std::runtime_error);
}

}  // namespace
}  // namespace mobirescue::serve
