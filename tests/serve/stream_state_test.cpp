#include "serve/stream_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "roadnet/city_builder.hpp"
#include "roadnet/spatial_index.hpp"

namespace mobirescue::serve {
namespace {

class StreamStateTest : public ::testing::Test {
 protected:
  StreamStateTest() {
    roadnet::CityConfig config;
    config.grid_width = 6;
    config.grid_height = 6;
    city_ = roadnet::BuildCity(config);
    index_ = std::make_unique<roadnet::SpatialIndex>(city_.network, city_.box);
  }

  /// A moving record pinned to a landmark's position (always matchable).
  mobility::GpsRecord At(mobility::PersonId p, double t,
                         roadnet::LandmarkId lm,
                         double speed = 10.0) const {
    mobility::GpsRecord r;
    r.person = p;
    r.t = t;
    r.pos = city_.network.landmark(lm).pos;
    r.speed_mps = speed;
    return r;
  }

  /// A synthetic day: people hop between landmarks, pinging every few
  /// minutes; per-person timestamps strictly increase.
  mobility::GpsTrace SyntheticDay(int people = 12, int pings = 40) const {
    mobility::GpsTrace trace;
    const std::size_t n = city_.network.num_landmarks();
    for (int p = 0; p < people; ++p) {
      for (int i = 0; i < pings; ++i) {
        const auto lm = static_cast<roadnet::LandmarkId>(
            (static_cast<std::size_t>(p) * 31 + static_cast<std::size_t>(i) * 7) % n);
        trace.push_back(At(p, 120.0 * i + p, lm, i % 3 == 0 ? 0.0 : 9.0));
      }
    }
    std::sort(trace.begin(), trace.end(),
              [](const mobility::GpsRecord& a, const mobility::GpsRecord& b) {
                return a.t < b.t;
              });
    return trace;
  }

  roadnet::City city_;
  std::unique_ptr<roadnet::SpatialIndex> index_;
};

TEST_F(StreamStateTest, TracksLatestPositionPerPerson) {
  StreamState state(city_.network, *index_);
  state.Apply(At(1, 0.0, 0));
  state.Apply(At(1, 60.0, 3));
  state.Apply(At(2, 30.0, 5));

  const auto& snap = state.Snapshot(60.0);
  ASSERT_EQ(snap.size(), 2u);
  std::unordered_map<mobility::PersonId, mobility::GpsRecord> by_person;
  for (const auto& r : snap) by_person[r.person] = r;
  EXPECT_DOUBLE_EQ(by_person.at(1).t, 60.0);
  EXPECT_DOUBLE_EQ(by_person.at(2).t, 30.0);
  EXPECT_EQ(state.num_people_seen(), 2u);
}

TEST_F(StreamStateTest, SnapshotContentMatchesBatchTracker) {
  const mobility::GpsTrace trace = SyntheticDay();
  sim::PopulationTracker batch(trace);

  StreamState streamed(city_.network, *index_);
  std::size_t cursor = 0;
  for (double t : {600.0, 1800.0, 3600.0, 5400.0}) {
    while (cursor < trace.size() && trace[cursor].t <= t) {
      streamed.Apply(trace[cursor]);
      ++cursor;
    }
    const auto& a = batch.Snapshot(t);
    const auto& b = streamed.Snapshot(t);
    ASSERT_EQ(a.size(), b.size()) << "t=" << t;

    // Same content keyed by person (row order is implementation detail).
    std::unordered_map<mobility::PersonId, mobility::GpsRecord> want;
    for (const auto& r : a) want[r.person] = r;
    for (const auto& r : b) {
      const auto it = want.find(r.person);
      ASSERT_NE(it, want.end()) << "person " << r.person;
      EXPECT_DOUBLE_EQ(r.t, it->second.t);
      EXPECT_DOUBLE_EQ(r.pos.lat, it->second.pos.lat);
      EXPECT_DOUBLE_EQ(r.pos.lon, it->second.pos.lon);
      EXPECT_DOUBLE_EQ(r.speed_mps, it->second.speed_mps);
    }
  }
}

TEST_F(StreamStateTest, IncrementalFlowsMatchBatchAnalyzer) {
  const mobility::GpsTrace trace = SyntheticDay();

  // Batch path: match the whole trace, ingest once.
  mobility::MapMatcher matcher(city_.network, *index_);
  mobility::FlowRateAnalyzer batch(city_.network, 24);
  batch.Ingest(matcher.MatchTrace(trace));

  // Streamed path: one record at a time, in time order.
  StreamState streamed(city_.network, *index_);
  streamed.ApplyAll(trace);

  for (std::size_t seg = 0; seg < city_.network.num_segments(); ++seg) {
    for (int h = 0; h < 24; ++h) {
      ASSERT_DOUBLE_EQ(
          streamed.flows().SegmentFlow(static_cast<roadnet::SegmentId>(seg), h),
          batch.SegmentFlow(static_cast<roadnet::SegmentId>(seg), h))
          << "seg=" << seg << " hour=" << h;
    }
  }
}

TEST_F(StreamStateTest, CountsUnmatchedRecords) {
  mobility::MatchConfig strict;
  strict.max_match_distance_m = 1.0;
  StreamStateConfig config;
  config.match = strict;
  StreamState state(city_.network, *index_, config);

  mobility::GpsRecord far = At(1, 0.0, 0);
  far.pos.lat += 1.0;
  far.pos.lon += 1.0;
  state.Apply(far);
  state.Apply(At(2, 10.0, 0));

  const StreamStateCounters& c = state.counters();
  EXPECT_EQ(c.applied, 2u);
  EXPECT_EQ(c.matched, 1u);
  EXPECT_EQ(c.unmatched, 1u);
  // Unmatched records still update the person's latest position.
  EXPECT_EQ(state.Snapshot(10.0).size(), 2u);
}

}  // namespace
}  // namespace mobirescue::serve
