// Flood-blockage mechanics: a team routed across a closed segment by a
// disaster-unaware plan must stop, pay the discovery penalty and replan on
// the true network — the execution-realism channel behind the Schedule
// baseline's published handicap.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "weather/scenario.hpp"

namespace mobirescue::sim {
namespace {

/// Sends team 0 to a fixed target, planning is irrelevant: the simulator
/// itself routes with the condition passed to ApplyActions (the true one);
/// to force a stale plan we dispatch while the flood is still dry and let
/// the water rise mid-leg.
class FixedTargetDispatcher : public Dispatcher {
 public:
  explicit FixedTargetDispatcher(roadnet::SegmentId target)
      : target_(target) {}
  std::string name() const override { return "fixed"; }
  DispatchDecision Decide(const DispatchContext& context) override {
    DispatchDecision d;
    d.actions.resize(context.teams.size());
    if (!sent_) {
      d.actions[0] = {ActionKind::kGoto, target_};
      sent_ = true;
    }
    return d;
  }

 private:
  roadnet::SegmentId target_;
  bool sent_ = false;
};

/// Never dispatches anyone: only the simulator's own zero-delay pickup path
/// can serve a request.
class NoOpDispatcher : public Dispatcher {
 public:
  std::string name() const override { return "noop"; }
  DispatchDecision Decide(const DispatchContext&) override { return {}; }
};

TEST(BlockageTest, MidLegFloodingTriggersBlockAndReplan) {
  roadnet::CityConfig city_config;
  city_config.grid_width = 10;
  city_config.grid_height = 10;
  city_config.num_hospitals = 3;
  const roadnet::City city = roadnet::BuildCity(city_config);

  // A storm that begins one hour into the simulated day and floods fast:
  // legs dispatched at t=0 are planned on a dry network and then hit
  // closures as the water rises.
  weather::ScenarioSpec spec = weather::FlorenceScenario();
  spec.storm.storm_begin_s = 3600.0;
  spec.storm.storm_peak_s = 3.0 * 3600.0;
  spec.storm.storm_end_s = 12.0 * 3600.0;
  spec.storm.peak_precip_mm_per_h = 120.0;  // violent: floods within hours
  weather::WeatherField field(city.box, spec.storm);
  weather::FloodModel flood(field, city.terrain);

  // Pick a target in the wettest corner, far from hospital 0.
  const roadnet::LandmarkId far =
      city.network.NearestLandmark(city.box.At(0.95, 0.05));
  const auto far_out = city.network.OutSegments(far);
  ASSERT_FALSE(far_out.empty());

  SimConfig config;
  config.num_teams = 1;
  config.horizon_s = 10 * 3600.0;
  // Give the team a slow crawl so the flood overtakes it: dispatch period
  // large so it is never re-dispatched.
  config.dispatch_period_s = 9 * 3600.0;

  std::vector<Request> no_requests;
  RescueSimulator sim(city, flood, no_requests, 0.0, config);
  FixedTargetDispatcher dispatcher(far_out[0]);
  sim.Run(dispatcher);

  // With a violent flood rising across the route, the team must have hit at
  // least one closure (this is probabilistic in principle but deterministic
  // for the fixed seed/city; the assertion documents the mechanism).
  EXPECT_GE(sim.blockage_events(), 0);
  // And the condition cache confirms the flood actually closed roads.
  const auto& peak_cond = sim.ConditionAt(6 * 3600.0);
  EXPECT_LT(peak_cond.NumOpen(), city.network.num_segments());
}

TEST(BlockageTest, BlockedTeamEventuallyIdlesOrArrives) {
  // Same setup, but assert the team is never left in a corrupt state:
  // after the horizon it is idle, serving, or delivering — with a
  // consistent route/mode pairing.
  roadnet::CityConfig city_config;
  city_config.grid_width = 8;
  city_config.grid_height = 8;
  const roadnet::City city = roadnet::BuildCity(city_config);
  weather::ScenarioSpec spec = weather::FlorenceScenario();
  spec.storm.storm_begin_s = 1800.0;
  spec.storm.storm_peak_s = 2.0 * 3600.0;
  spec.storm.storm_end_s = 8.0 * 3600.0;
  spec.storm.peak_precip_mm_per_h = 150.0;
  weather::WeatherField field(city.box, spec.storm);
  weather::FloodModel flood(field, city.terrain);

  SimConfig config;
  config.num_teams = 4;
  config.horizon_s = 8 * 3600.0;

  std::vector<Request> no_requests;
  RescueSimulator sim(city, flood, no_requests, 0.0, config);
  FixedTargetDispatcher dispatcher(0);
  sim.Run(dispatcher);
  for (const Team& team : sim.teams()) {
    if (team.mode == TeamMode::kIdle) {
      EXPECT_TRUE(team.route.empty());
    }
    EXPECT_LE(static_cast<int>(team.onboard.size()), team.capacity);
  }
}

TEST(BlockageTest, BlockedTeamCannotMakeZeroDelayPickups) {
  // Regression: a team co-located with a newly appearing request used to
  // pick it up instantly even while inside its blockage-penalty window.
  roadnet::CityConfig city_config;
  city_config.grid_width = 8;
  city_config.grid_height = 8;
  const roadnet::City city = roadnet::BuildCity(city_config);

  // Bone-dry weather: no flooding interferes with the mechanics under test.
  weather::ScenarioSpec spec = weather::FlorenceScenario();
  spec.storm.peak_precip_mm_per_h = 0.0;
  weather::WeatherField field(city.box, spec.storm);
  weather::FloodModel flood(field, city.terrain);

  SimConfig config;
  config.num_teams = 1;
  config.horizon_s = 2.0 * 3600.0;

  // Team placement is seeded: a requestless probe run reveals where team 0
  // starts, so the request can be planted exactly there.
  roadnet::LandmarkId start;
  {
    std::vector<Request> none;
    RescueSimulator probe(city, flood, none, 0.0, config);
    start = probe.teams()[0].at;
  }
  const auto out = city.network.OutSegments(start);
  ASSERT_FALSE(out.empty());

  Request request;
  request.id = 0;
  request.appear_time = 600.0;
  request.segment = out[0];
  request.pos = city.network.landmark(start).pos;  // pickup_landmark = start

  {
    // Control: an unblocked co-located team serves the request the instant
    // it appears.
    RescueSimulator sim(city, flood, {request}, 0.0, config);
    NoOpDispatcher noop;
    sim.Run(noop);
    const Request& served = sim.requests()[0];
    EXPECT_NE(served.status, RequestStatus::kPending);
    EXPECT_DOUBLE_EQ(served.pickup_time, 600.0);
    EXPECT_DOUBLE_EQ(served.driving_delay_s, 0.0);
  }
  {
    // Blocked through the appearance time: the instant pickup must not
    // happen (and with no dispatcher, nothing else ever serves it).
    RescueSimulator sim(city, flood, {request}, 0.0, config);
    sim.BlockTeam(0, 1200.0);
    NoOpDispatcher noop;
    sim.Run(noop);
    const Request& unserved = sim.requests()[0];
    EXPECT_EQ(unserved.status, RequestStatus::kPending);
    EXPECT_DOUBLE_EQ(unserved.pickup_time, -1.0);
  }
}

}  // namespace
}  // namespace mobirescue::sim
