// Engine-parity suite for the discrete-event simulator core (DESIGN.md
// §14): the event-driven driver must produce bit-identical
// MetricsCollector output — and identical request lifecycles — to the
// time-stepped reference loop, at paper scale, across seeds and across
// all four dispatcher families. Also covers facade re-entrancy on the
// event driver, exogenous mid-segment blockage parity, and the event
// sparsity that motivates the engine (ROADMAP item 2).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dispatch/rescue_dispatcher.hpp"
#include "dispatch/schedule_dispatcher.hpp"
#include "dispatch/simple_dispatchers.hpp"
#include "predict/time_series_predictor.hpp"
#include "sim/simulator.hpp"
#include "weather/scenario.hpp"

namespace mobirescue::sim {
namespace {

struct ParityWorld {
  roadnet::City city;
  std::unique_ptr<weather::WeatherField> field;
  std::unique_ptr<weather::FloodModel> flood;
  std::unique_ptr<predict::TimeSeriesPredictor> predictor;
};

ParityWorld& SharedWorld() {
  static ParityWorld world = [] {
    ParityWorld w;
    roadnet::CityConfig config;
    config.grid_width = 10;
    config.grid_height = 10;
    config.num_hospitals = 4;
    w.city = roadnet::BuildCity(config);
    // A storm overlapping the simulated day, so flood conditions change
    // across hourly epochs mid-run and blockages actually happen.
    weather::ScenarioSpec spec = weather::FlorenceScenario();
    spec.storm.storm_begin_s = 0.2 * util::kSecondsPerDay;
    spec.storm.storm_peak_s = 0.5 * util::kSecondsPerDay;
    spec.storm.storm_end_s = 1.2 * util::kSecondsPerDay;
    w.field = std::make_unique<weather::WeatherField>(w.city.box, spec.storm);
    w.flood = std::make_unique<weather::FloodModel>(*w.field, w.city.terrain);
    // Synthetic multi-day demand history for the Rescue (prediction-based)
    // dispatcher.
    std::vector<mobility::RescueEvent> history;
    util::Rng rng(99);
    for (int day = 0; day < 5; ++day) {
      for (int i = 0; i < 120; ++i) {
        mobility::RescueEvent e;
        e.request_time =
            day * util::kSecondsPerDay + rng.Uniform(0.0, 20.0 * 3600.0);
        e.request_segment = static_cast<roadnet::SegmentId>(
            rng.Index(w.city.network.num_segments()));
        e.region = w.city.network.segment(e.request_segment).region;
        history.push_back(e);
      }
    }
    w.predictor = std::make_unique<predict::TimeSeriesPredictor>(history, 5);
    return w;
  }();
  return world;
}

std::vector<Request> RandomRequests(const roadnet::City& city,
                                    std::uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<Request> out;
  for (int i = 0; i < count; ++i) {
    Request r;
    r.id = i;
    r.appear_time = rng.Uniform(0.0, 20.0 * 3600.0);
    r.segment =
        static_cast<roadnet::SegmentId>(rng.Index(city.network.num_segments()));
    r.pos = city.network.SegmentMidpoint(r.segment);
    r.region = city.network.segment(r.segment).region;
    out.push_back(r);
  }
  return out;
}

std::unique_ptr<Dispatcher> MakeDispatcher(const std::string& kind,
                                           std::uint64_t seed,
                                           int num_teams) {
  ParityWorld& w = SharedWorld();
  if (kind == "random") {
    return std::make_unique<dispatch::RandomDispatcher>(w.city, seed);
  }
  if (kind == "greedy") {
    return std::make_unique<dispatch::GreedyNearestDispatcher>(w.city);
  }
  if (kind == "schedule") {
    return std::make_unique<dispatch::ScheduleDispatcher>(w.city, num_teams);
  }
  return std::make_unique<dispatch::RescueDispatcher>(w.city, *w.predictor);
}

/// Exact (bit-level) equality over everything MetricsCollector exposes.
void ExpectMetricsBitIdentical(const MetricsCollector& stepped,
                               const MetricsCollector& event,
                               int num_teams) {
  EXPECT_EQ(stepped.total_served(), event.total_served());
  EXPECT_EQ(stepped.total_timely(), event.total_timely());
  EXPECT_EQ(stepped.total_delivered(), event.total_delivered());
  EXPECT_EQ(stepped.served_per_hour(), event.served_per_hour());
  EXPECT_EQ(stepped.timely_served_per_hour(), event.timely_served_per_hour());
  // operator== on vector<double> is exact comparison: bit-identity, not
  // tolerance.
  EXPECT_EQ(stepped.delay_samples(), event.delay_samples());
  EXPECT_EQ(stepped.timeliness_samples(), event.timeliness_samples());
  EXPECT_EQ(stepped.AvgDelayPerHour(), event.AvgDelayPerHour());
  EXPECT_EQ(stepped.ServingTeamsPerHour(), event.ServingTeamsPerHour());
  EXPECT_EQ(stepped.ServedPerTeam(num_teams), event.ServedPerTeam(num_teams));
}

void ExpectWorldsBitIdentical(const RescueSimulator& stepped,
                              const RescueSimulator& event) {
  ASSERT_EQ(stepped.requests().size(), event.requests().size());
  for (std::size_t i = 0; i < stepped.requests().size(); ++i) {
    const Request& a = stepped.requests()[i];
    const Request& b = event.requests()[i];
    EXPECT_EQ(a.status, b.status) << "request " << i;
    EXPECT_EQ(a.pickup_time, b.pickup_time) << "request " << i;
    EXPECT_EQ(a.delivery_time, b.delivery_time) << "request " << i;
    EXPECT_EQ(a.served_by_team, b.served_by_team) << "request " << i;
    EXPECT_EQ(a.driving_delay_s, b.driving_delay_s) << "request " << i;
  }
  ASSERT_EQ(stepped.teams().size(), event.teams().size());
  for (std::size_t k = 0; k < stepped.teams().size(); ++k) {
    const Team& a = stepped.teams()[k];
    const Team& b = event.teams()[k];
    EXPECT_EQ(a.at, b.at) << "team " << k;
    EXPECT_EQ(a.mode, b.mode) << "team " << k;
    EXPECT_EQ(a.onboard, b.onboard) << "team " << k;
    EXPECT_EQ(a.served_total, b.served_total) << "team " << k;
  }
  EXPECT_EQ(stepped.blockage_events(), event.blockage_events());
}

struct ParityCase {
  std::string dispatcher;
  std::uint64_t seed;
};

class EngineParityTest : public ::testing::TestWithParam<ParityCase> {};

// Tentpole acceptance gate: paper-scale configuration (100 teams, full
// 24 h day, 5-min rounds, storm overlapping the day), ≥3 seeds × all four
// dispatcher families, bit-identical metrics and world state.
TEST_P(EngineParityTest, EventEngineBitIdenticalToSteppedLoop) {
  ParityWorld& w = SharedWorld();
  const ParityCase& pc = GetParam();

  SimConfig config;
  config.num_teams = 100;
  config.horizon_s = util::kSecondsPerDay;
  config.seed = pc.seed;
  auto requests = RandomRequests(w.city, pc.seed * 31 + 7, 300);

  config.engine = SimEngine::kTimeStepped;
  RescueSimulator stepped(w.city, *w.flood, requests, 0.0, config);
  auto d1 = MakeDispatcher(pc.dispatcher, pc.seed, config.num_teams);
  const MetricsCollector m_stepped = stepped.Run(*d1);

  config.engine = SimEngine::kEventDriven;
  RescueSimulator event(w.city, *w.flood, requests, 0.0, config);
  auto d2 = MakeDispatcher(pc.dispatcher, pc.seed, config.num_teams);
  const MetricsCollector m_event = event.Run(*d2);

  ExpectMetricsBitIdentical(m_stepped, m_event, config.num_teams);
  ExpectWorldsBitIdentical(stepped, event);
  EXPECT_EQ(stepped.now(), event.now());

  // The event driver must actually be event-driven: it schedules events
  // and skips quiet boundaries the stepped loop grinds through.
  EXPECT_EQ(stepped.events_scheduled_total(), 0u);
  EXPECT_GT(event.events_scheduled_total(), 0u);
  EXPECT_LE(event.boundaries_visited(), stepped.boundaries_visited());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDispatchers, EngineParityTest,
    ::testing::Values(
        ParityCase{"random", 1}, ParityCase{"random", 2},
        ParityCase{"random", 3}, ParityCase{"greedy", 1},
        ParityCase{"greedy", 2}, ParityCase{"greedy", 3},
        ParityCase{"schedule", 1}, ParityCase{"schedule", 2},
        ParityCase{"schedule", 3}, ParityCase{"rescue", 1},
        ParityCase{"rescue", 2}, ParityCase{"rescue", 3}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return info.param.dispatcher + "_seed" +
             std::to_string(info.param.seed);
    });

// The incremental facade behaves identically on the event driver:
// NextRound without SubmitDecision re-surfaces the same due round, and
// incremental driving matches Run() bit-for-bit.
TEST(EventEngineFacadeTest, NextRoundIsReentrantAndIncrementalMatchesRun) {
  ParityWorld& w = SharedWorld();
  SimConfig config;
  config.num_teams = 12;
  config.horizon_s = 6.0 * 3600.0;
  config.engine = SimEngine::kEventDriven;
  auto requests = RandomRequests(w.city, 41, 60);

  RescueSimulator batch(w.city, *w.flood, requests, 0.0, config);
  dispatch::GreedyNearestDispatcher d_batch(w.city);
  const MetricsCollector m_batch = batch.Run(d_batch);

  RescueSimulator inc(w.city, *w.flood, requests, 0.0, config);
  dispatch::GreedyNearestDispatcher d_inc(w.city);
  DispatchContext ctx;
  bool first = true;
  while (inc.NextRound(d_inc, &ctx)) {
    if (first) {
      // Re-entry without a decision re-surfaces the same round.
      const double due_now = ctx.now;
      DispatchContext again;
      ASSERT_TRUE(inc.NextRound(d_inc, &again));
      EXPECT_EQ(again.now, due_now);
      EXPECT_EQ(again.teams.size(), ctx.teams.size());
      first = false;
    }
    inc.SubmitDecision(d_inc.Decide(ctx));
  }
  ExpectMetricsBitIdentical(m_batch, inc.metrics(), config.num_teams);
}

// Exogenous mid-route BlockTeam (incident reports) must freeze and resume
// identically in both engines, including the mid-segment pause/shift.
TEST(EventEngineFacadeTest, ExternalMidRouteBlockageParity) {
  ParityWorld& w = SharedWorld();
  SimConfig config;
  config.num_teams = 10;
  config.horizon_s = 6.0 * 3600.0;
  auto requests = RandomRequests(w.city, 7, 50);

  auto run = [&](SimEngine engine) {
    config.engine = engine;
    auto sim = std::make_unique<RescueSimulator>(w.city, *w.flood, requests,
                                                 0.0, config);
    dispatch::GreedyNearestDispatcher d(w.city);
    DispatchContext ctx;
    int round = 0;
    while (sim->NextRound(d, &ctx)) {
      sim->SubmitDecision(d.Decide(ctx));
      // After the second round the fleet is en route: freeze three teams
      // mid-leg for staggered durations.
      if (++round == 2) {
        sim->BlockTeam(0, ctx.now + 900.0);
        sim->BlockTeam(1, ctx.now + 555.0);
        sim->BlockTeam(2, ctx.now + 1800.0);
      }
    }
    return sim;
  };

  auto stepped = run(SimEngine::kTimeStepped);
  auto event = run(SimEngine::kEventDriven);
  ExpectMetricsBitIdentical(stepped->metrics(), event->metrics(),
                            config.num_teams);
  ExpectWorldsBitIdentical(*stepped, *event);
}

// Sparse long-horizon scenario: the whole point of the event engine. With
// a quiet fleet most 10 s boundaries carry no event, so the event driver
// visits a small fraction of them.
TEST(EventEngineSparsityTest, QuietBoundariesAreSkipped) {
  ParityWorld& w = SharedWorld();
  SimConfig config;
  config.num_teams = 20;
  config.horizon_s = util::kSecondsPerDay;
  // A handful of early requests, then a long tail of nothing.
  auto requests = RandomRequests(w.city, 11, 10);
  for (Request& r : requests) r.appear_time *= 0.1;  // all within ~2 h

  config.engine = SimEngine::kTimeStepped;
  RescueSimulator stepped(w.city, *w.flood, requests, 0.0, config);
  dispatch::GreedyNearestDispatcher d1(w.city);
  const MetricsCollector m1 = stepped.Run(d1);

  config.engine = SimEngine::kEventDriven;
  RescueSimulator event(w.city, *w.flood, requests, 0.0, config);
  dispatch::GreedyNearestDispatcher d2(w.city);
  const MetricsCollector m2 = event.Run(d2);

  ExpectMetricsBitIdentical(m1, m2, config.num_teams);
  // The stepped loop visits every one of horizon/step boundaries; the
  // event driver only the ones where something could happen (at least the
  // 5-min dispatch rounds, at most a small multiple of them).
  const std::uint64_t total_boundaries =
      static_cast<std::uint64_t>(config.horizon_s / config.step_s);
  EXPECT_GE(stepped.boundaries_visited(), total_boundaries);
  EXPECT_LT(event.boundaries_visited(), total_boundaries / 4);
  // Typed-event accounting is populated.
  EXPECT_GT(event.events_scheduled(SimEventType::kDispatchRound), 0u);
  EXPECT_GT(event.events_scheduled(SimEventType::kDecisionEffective), 0u);
  EXPECT_GT(event.events_scheduled(SimEventType::kRequestAppear), 0u);
  EXPECT_EQ(event.events_scheduled_total(),
            event.events_scheduled(SimEventType::kSegmentArrival) +
                event.events_scheduled(SimEventType::kPickupGrace) +
                event.events_scheduled(SimEventType::kBlockageExpiry) +
                event.events_scheduled(SimEventType::kConditionEpoch) +
                event.events_scheduled(SimEventType::kRequestAppear) +
                event.events_scheduled(SimEventType::kDispatchRound) +
                event.events_scheduled(SimEventType::kDecisionEffective));
}

}  // namespace
}  // namespace mobirescue::sim
