#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace mobirescue::sim {
namespace {

TEST(MetricsTest, PickupBucketsByHour) {
  MetricsCollector m(24);
  m.RecordPickup(0.5 * 3600.0, 120.0, 300.0, true, 0);
  m.RecordPickup(0.6 * 3600.0, 240.0, 2000.0, false, 1);
  m.RecordPickup(5.5 * 3600.0, 60.0, 100.0, true, 0);

  EXPECT_EQ(m.served_per_hour()[0], 2);
  EXPECT_EQ(m.timely_served_per_hour()[0], 1);
  EXPECT_EQ(m.served_per_hour()[5], 1);
  EXPECT_EQ(m.total_served(), 3);
  EXPECT_EQ(m.total_timely(), 2);
}

TEST(MetricsTest, AvgDelayPerHour) {
  MetricsCollector m(24);
  m.RecordPickup(3600.0 * 2 + 10, 100.0, 0.0, true, 0);
  m.RecordPickup(3600.0 * 2 + 20, 300.0, 0.0, true, 1);
  const auto avg = m.AvgDelayPerHour();
  EXPECT_DOUBLE_EQ(avg[2], 200.0);
  EXPECT_DOUBLE_EQ(avg[3], 0.0);
}

TEST(MetricsTest, ServingTeamsAveragesWithinHour) {
  MetricsCollector m(24);
  m.RecordServingTeams(100.0, 10);
  m.RecordServingTeams(200.0, 20);
  const auto serving = m.ServingTeamsPerHour();
  EXPECT_DOUBLE_EQ(serving[0], 15.0);
}

TEST(MetricsTest, ServedPerTeam) {
  MetricsCollector m(24);
  m.RecordPickup(10, 0, 0, true, 2);
  m.RecordPickup(20, 0, 0, true, 2);
  m.RecordPickup(30, 0, 0, true, 0);
  const auto per_team = m.ServedPerTeam(4);
  EXPECT_EQ(per_team[0], 1);
  EXPECT_EQ(per_team[1], 0);
  EXPECT_EQ(per_team[2], 2);
}

TEST(MetricsTest, DeliveriesCounted) {
  MetricsCollector m(24);
  m.RecordDelivery(100.0);
  m.RecordDelivery(200.0);
  EXPECT_EQ(m.total_delivered(), 2);
}

TEST(MetricsTest, SamplesAccumulate) {
  MetricsCollector m(24);
  m.RecordPickup(10, 111.0, 222.0, false, 0);
  ASSERT_EQ(m.delay_samples().size(), 1u);
  EXPECT_DOUBLE_EQ(m.delay_samples()[0], 111.0);
  EXPECT_DOUBLE_EQ(m.timeliness_samples()[0], 222.0);
}

TEST(MetricsTest, OutOfRangeHourClamped) {
  MetricsCollector m(24);
  m.RecordPickup(30 * 3600.0, 1.0, 1.0, true, 0);  // hour 30 -> clamp to 23
  EXPECT_EQ(m.served_per_hour()[23], 1);
}

}  // namespace
}  // namespace mobirescue::sim
