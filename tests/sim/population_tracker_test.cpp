#include "sim/population_tracker.hpp"

#include <gtest/gtest.h>

namespace mobirescue::sim {
namespace {

mobility::GpsRecord Rec(mobility::PersonId p, double t, double lat) {
  mobility::GpsRecord r;
  r.person = p;
  r.t = t;
  r.pos = {lat, -78.9};
  return r;
}

TEST(PopulationTrackerTest, SnapshotAdvancesWithTime) {
  PopulationTracker tracker({Rec(0, 10, 35.1), Rec(0, 100, 35.2),
                             Rec(1, 50, 35.3)});
  const auto& early = tracker.Snapshot(20.0);
  ASSERT_EQ(early.size(), 1u);
  EXPECT_DOUBLE_EQ(early[0].pos.lat, 35.1);

  const auto& later = tracker.Snapshot(200.0);
  EXPECT_EQ(later.size(), 2u);
  for (const auto& r : later) {
    if (r.person == 0) EXPECT_DOUBLE_EQ(r.pos.lat, 35.2);
  }
}

TEST(PopulationTrackerTest, HandlesUnsortedInput) {
  PopulationTracker tracker({Rec(0, 100, 35.2), Rec(0, 10, 35.1)});
  const auto& snap = tracker.Snapshot(50.0);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].pos.lat, 35.1);
}

TEST(PopulationTrackerTest, EmptyTrace) {
  PopulationTracker tracker({});
  EXPECT_TRUE(tracker.Snapshot(100.0).empty());
}

TEST(DaySliceTest, FiltersAndRetimes) {
  mobility::GpsTrace trace = {
      Rec(0, 0.5 * util::kSecondsPerDay, 35.1),
      Rec(0, 1.5 * util::kSecondsPerDay, 35.2),
      Rec(0, 2.5 * util::kSecondsPerDay, 35.3),
  };
  const auto slice = DaySlice(trace, 1);
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_NEAR(slice[0].t, 0.5 * util::kSecondsPerDay, 1e-9);
  EXPECT_DOUBLE_EQ(slice[0].pos.lat, 35.2);
}

}  // namespace
}  // namespace mobirescue::sim
