#include "sim/request.hpp"

#include <gtest/gtest.h>

namespace mobirescue::sim {
namespace {

mobility::RescueEvent Event(mobility::PersonId person, double t,
                            roadnet::SegmentId seg) {
  mobility::RescueEvent ev;
  ev.person = person;
  ev.request_time = t;
  ev.request_segment = seg;
  ev.region = 3;
  return ev;
}

TEST(RequestTest, SelectsOnlyTheGivenDay) {
  std::vector<mobility::RescueEvent> events = {
      Event(0, 0.5 * util::kSecondsPerDay, 1),
      Event(1, 1.3 * util::kSecondsPerDay, 2),
      Event(2, 1.9 * util::kSecondsPerDay, 3),
      Event(3, 2.1 * util::kSecondsPerDay, 4),
  };
  const auto requests = RequestsFromEvents(events, 1);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].person, 1);
  EXPECT_EQ(requests[1].person, 2);
}

TEST(RequestTest, RetimesToDayStart) {
  std::vector<mobility::RescueEvent> events = {
      Event(0, 1.25 * util::kSecondsPerDay, 7)};
  const auto requests = RequestsFromEvents(events, 1);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_NEAR(requests[0].appear_time, 0.25 * util::kSecondsPerDay, 1e-9);
  EXPECT_EQ(requests[0].segment, 7);
  EXPECT_EQ(requests[0].region, 3);
  EXPECT_EQ(requests[0].status, RequestStatus::kFuture);
}

TEST(RequestTest, SequentialIds) {
  std::vector<mobility::RescueEvent> events = {
      Event(5, 1.1 * util::kSecondsPerDay, 1),
      Event(6, 1.2 * util::kSecondsPerDay, 2),
  };
  const auto requests = RequestsFromEvents(events, 1);
  EXPECT_EQ(requests[0].id, 0);
  EXPECT_EQ(requests[1].id, 1);
}

TEST(RequestTest, SkipsUnmatchedSegments) {
  std::vector<mobility::RescueEvent> events = {
      Event(0, 1.5 * util::kSecondsPerDay, roadnet::kInvalidSegment)};
  EXPECT_TRUE(RequestsFromEvents(events, 1).empty());
}

}  // namespace
}  // namespace mobirescue::sim
