#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "weather/scenario.hpp"

namespace mobirescue::sim {
namespace {

/// A dispatcher scripted from outside: returns pre-programmed actions.
class ScriptedDispatcher : public Dispatcher {
 public:
  std::string name() const override { return "scripted"; }
  DispatchDecision Decide(const DispatchContext& context) override {
    ++rounds;
    last_pending = context.pending.size();
    DispatchDecision d;
    d.compute_latency_s = latency_s;
    d.actions.resize(context.teams.size());
    if (!script.empty()) {
      for (std::size_t k = 0; k < d.actions.size() && k < script.size(); ++k) {
        d.actions[k] = script[k];
      }
      if (!repeat) script.clear();
    }
    return d;
  }

  std::vector<TeamAction> script;
  bool repeat = false;
  double latency_s = 0.0;
  int rounds = 0;
  std::size_t last_pending = 0;
};

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : spec_(weather::TestScenario()) {
    roadnet::CityConfig config;
    config.grid_width = 8;
    config.grid_height = 8;
    config.num_hospitals = 3;
    city_ = roadnet::BuildCity(config);
    // A storm far in the future: the network stays fully open.
    spec_.storm.storm_begin_s = 50 * util::kSecondsPerDay;
    spec_.storm.storm_peak_s = 51 * util::kSecondsPerDay;
    spec_.storm.storm_end_s = 52 * util::kSecondsPerDay;
    field_ = std::make_unique<weather::WeatherField>(city_.box, spec_.storm);
    flood_ = std::make_unique<weather::FloodModel>(*field_, city_.terrain);
  }

  Request MakeRequest(int id, double t, roadnet::SegmentId seg) {
    Request r;
    r.id = id;
    r.appear_time = t;
    r.segment = seg;
    r.pos = city_.network.SegmentMidpoint(seg);
    r.region = city_.network.segment(seg).region;
    return r;
  }

  SimConfig FastConfig(int teams = 2) {
    SimConfig config;
    config.num_teams = teams;
    config.horizon_s = 6 * 3600.0;
    config.dispatch_period_s = 300.0;
    return config;
  }

  /// A segment whose entry landmark differs from every hospital.
  roadnet::SegmentId NonHospitalSegment() const {
    for (const roadnet::RoadSegment& seg : city_.network.segments()) {
      bool touches_hospital = false;
      for (roadnet::LandmarkId h : city_.hospitals) {
        if (seg.from == h || seg.to == h) touches_hospital = true;
      }
      if (!touches_hospital) return seg.id;
    }
    return 0;
  }

  weather::ScenarioSpec spec_;
  roadnet::City city_;
  std::unique_ptr<weather::WeatherField> field_;
  std::unique_ptr<weather::FloodModel> flood_;
};

TEST_F(SimulatorTest, TeamsStartAtHospitals) {
  RescueSimulator sim(city_, *flood_, {}, 0.0, FastConfig(10));
  for (const Team& team : sim.teams()) {
    EXPECT_NE(std::find(city_.hospitals.begin(), city_.hospitals.end(),
                        team.at),
              city_.hospitals.end());
    EXPECT_EQ(team.mode, TeamMode::kIdle);
    EXPECT_EQ(team.capacity, FastConfig().team_capacity);
  }
}

TEST_F(SimulatorTest, ScriptedGotoServesRequest) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));

  ScriptedDispatcher dispatcher;
  dispatcher.script = {{ActionKind::kGoto, seg}};
  dispatcher.repeat = true;
  const MetricsCollector metrics = sim.Run(dispatcher);

  EXPECT_EQ(metrics.total_served(), 1);
  EXPECT_EQ(metrics.total_delivered(), 1);
  const Request& served = sim.requests()[0];
  EXPECT_EQ(served.status, RequestStatus::kDelivered);
  EXPECT_GT(served.pickup_time, served.appear_time - 1e-9);
  EXPECT_GT(served.delivery_time, served.pickup_time);
  EXPECT_EQ(served.served_by_team, 0);
}

TEST_F(SimulatorTest, KeepDispatcherServesNothingRemote) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
  ScriptedDispatcher dispatcher;  // all kKeep forever
  const MetricsCollector metrics = sim.Run(dispatcher);
  EXPECT_EQ(metrics.total_served(), 0);
  EXPECT_EQ(sim.requests()[0].status, RequestStatus::kPending);
}

TEST_F(SimulatorTest, DispatchLatencyDelaysService) {
  const roadnet::SegmentId seg = NonHospitalSegment();

  auto run_with_latency = [&](double latency) {
    std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
    RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
    ScriptedDispatcher dispatcher;
    dispatcher.script = {{ActionKind::kGoto, seg}};
    dispatcher.repeat = true;
    dispatcher.latency_s = latency;
    sim.Run(dispatcher);
    return sim.requests()[0].pickup_time;
  };

  const double fast = run_with_latency(0.5);
  const double slow = run_with_latency(900.0);
  EXPECT_GT(slow, fast + 400.0);
}

TEST_F(SimulatorTest, InstantPickupWhenTeamAlreadyThere) {
  // Request at a landmark where an idle team is parked: picked up the
  // moment it appears (the paper's zero-timeliness case).
  roadnet::SegmentId seg = roadnet::kInvalidSegment;
  roadnet::LandmarkId where = roadnet::kInvalidLandmark;
  SimConfig config = FastConfig(8);  // enough teams to cover hospitals
  RescueSimulator probe(city_, *flood_, {}, 0.0, config);
  for (const roadnet::RoadSegment& s : city_.network.segments()) {
    for (const Team& team : probe.teams()) {
      if (s.from == team.at) {
        seg = s.id;
        where = team.at;
      }
    }
    if (seg != roadnet::kInvalidSegment) break;
  }
  ASSERT_NE(seg, roadnet::kInvalidSegment);

  std::vector<Request> requests = {MakeRequest(0, 1000.0, seg)};
  // Person stands exactly at the team's landmark.
  requests[0].pos = city_.network.landmark(where).pos;
  RescueSimulator sim(city_, *flood_, requests, 0.0, config);
  ScriptedDispatcher dispatcher;
  sim.Run(dispatcher);
  const Request& r = sim.requests()[0];
  EXPECT_EQ(r.status, RequestStatus::kDelivered);
  EXPECT_NEAR(r.pickup_time, r.appear_time, 1e-6);
  EXPECT_DOUBLE_EQ(r.driving_delay_s, 0.0);
}

TEST_F(SimulatorTest, CapacityBoundsOnboard) {
  // 7 requests on one segment, capacity 5: first trip takes at most 5.
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests;
  for (int i = 0; i < 7; ++i) requests.push_back(MakeRequest(i, 60.0, seg));
  SimConfig config = FastConfig(1);
  RescueSimulator sim(city_, *flood_, requests, 0.0, config);
  ScriptedDispatcher dispatcher;
  dispatcher.script = {{ActionKind::kGoto, seg}};
  dispatcher.repeat = true;
  const MetricsCollector metrics = sim.Run(dispatcher);
  // The single team shuttles: all 7 eventually served over 6 hours.
  EXPECT_EQ(metrics.total_served(), 7);
  EXPECT_EQ(metrics.total_delivered(), 7);
}

TEST_F(SimulatorTest, DepotActionPutsTeamAtDepot) {
  RescueSimulator sim(city_, *flood_, {}, 0.0, FastConfig(1));
  ScriptedDispatcher dispatcher;
  dispatcher.script = {{ActionKind::kDepot, roadnet::kInvalidSegment}};
  dispatcher.repeat = true;
  sim.Run(dispatcher);
  EXPECT_EQ(sim.teams()[0].at, city_.depot);
  EXPECT_EQ(sim.teams()[0].mode, TeamMode::kIdle);
}

TEST_F(SimulatorTest, PendingListedInContext) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg),
                                   MakeRequest(1, 90.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
  ScriptedDispatcher dispatcher;  // never serves
  sim.Run(dispatcher);
  EXPECT_EQ(dispatcher.last_pending, 2u);
  EXPECT_GT(dispatcher.rounds, 10);
}

TEST_F(SimulatorTest, ServedRequestsAreTimelyWithinThreshold) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(2));
  ScriptedDispatcher dispatcher;
  dispatcher.script = {{ActionKind::kGoto, seg}, {ActionKind::kKeep}};
  dispatcher.repeat = true;
  const MetricsCollector metrics = sim.Run(dispatcher);
  ASSERT_EQ(metrics.total_served(), 1);
  const double timeliness = sim.requests()[0].pickup_time - 60.0;
  EXPECT_EQ(metrics.total_timely(), timeliness <= 1800.0 ? 1 : 0);
}

// The incremental serving API (NextRound/SubmitDecision) must be
// round-for-round identical to Run() — the online DispatchService relies
// on it (DESIGN.md §11).
TEST_F(SimulatorTest, IncrementalDrivingMatchesRun) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  auto make_requests = [&] {
    return std::vector<Request>{MakeRequest(0, 60.0, seg),
                                MakeRequest(1, 3600.0, seg),
                                MakeRequest(2, 7500.0, seg)};
  };
  auto make_dispatcher = [&] {
    ScriptedDispatcher d;
    d.script = {{ActionKind::kGoto, seg}, {ActionKind::kKeep}};
    d.repeat = true;
    d.latency_s = 30.0;  // exercises the pending-decision queue
    return d;
  };

  RescueSimulator batch(city_, *flood_, make_requests(), 0.0, FastConfig(2));
  ScriptedDispatcher batch_dispatcher = make_dispatcher();
  const MetricsCollector batch_metrics = batch.Run(batch_dispatcher);

  RescueSimulator step(city_, *flood_, make_requests(), 0.0, FastConfig(2));
  ScriptedDispatcher step_dispatcher = make_dispatcher();
  DispatchContext ctx;
  int rounds = 0;
  while (step.NextRound(step_dispatcher, &ctx)) {
    ++rounds;
    step.SubmitDecision(step_dispatcher.Decide(ctx));
  }

  EXPECT_EQ(rounds, batch_dispatcher.rounds);
  EXPECT_EQ(step.metrics().total_served(), batch_metrics.total_served());
  EXPECT_EQ(step.metrics().total_timely(), batch_metrics.total_timely());
  ASSERT_EQ(step.requests().size(), batch.requests().size());
  for (std::size_t i = 0; i < step.requests().size(); ++i) {
    EXPECT_EQ(step.requests()[i].status, batch.requests()[i].status) << i;
    EXPECT_EQ(step.requests()[i].pickup_time, batch.requests()[i].pickup_time)
        << i;
    EXPECT_EQ(step.requests()[i].delivery_time,
              batch.requests()[i].delivery_time)
        << i;
    EXPECT_EQ(step.requests()[i].served_by_team,
              batch.requests()[i].served_by_team)
        << i;
  }
  for (std::size_t k = 0; k < step.teams().size(); ++k) {
    EXPECT_EQ(step.teams()[k].at, batch.teams()[k].at) << "team " << k;
    EXPECT_EQ(step.teams()[k].mode, batch.teams()[k].mode) << "team " << k;
  }
}

TEST_F(SimulatorTest, NextRoundIsReentrantUntilSubmit) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
  ScriptedDispatcher dispatcher;

  DispatchContext a, b;
  ASSERT_TRUE(sim.NextRound(dispatcher, &a));
  // Without SubmitDecision, the same due round is surfaced again at the
  // same clock.
  ASSERT_TRUE(sim.NextRound(dispatcher, &b));
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.teams.size(), b.teams.size());
  EXPECT_EQ(sim.now(), a.now);

  sim.SubmitDecision(dispatcher.Decide(b));
  ASSERT_TRUE(sim.NextRound(dispatcher, &a));
  EXPECT_GT(a.now, b.now);  // the clock moved to the next period
}

// Regression (drive-time accounting): the Eq. (5) drive-time feature must
// charge exactly the driving time actually consumed, not a full step_s per
// step touched. A team that stops driving mid-round reports the fractional
// leg time at the next round, bit-exactly.
TEST_F(SimulatorTest, DriveTimeChargesOnlyConsumedBudget) {
  SimConfig config = FastConfig(1);
  // A target segment adjacent to the team's start: the route is exactly
  // [seg], so the drive ends at the far endpoint — where the request
  // waits — and the pickup time IS the moment the drive ends (no
  // intermediate landmarks where an early pickup could happen).
  roadnet::LandmarkId start;
  {
    RescueSimulator probe(city_, *flood_, {}, 0.0, config);
    start = probe.teams()[0].at;
  }
  roadnet::SegmentId seg = roadnet::kInvalidSegment;
  for (const roadnet::RoadSegment& s : city_.network.segments()) {
    if (s.from != start || s.to == start) continue;
    const double travel = s.length_m / s.speed_limit_mps;
    if (travel > 40.0 && travel < 3000.0) {
      seg = s.id;
      break;
    }
  }
  ASSERT_NE(seg, roadnet::kInvalidSegment);
  std::vector<Request> requests = {MakeRequest(0, 1.0, seg)};
  requests[0].pos =
      city_.network.landmark(city_.network.segment(seg).to).pos;

  struct Record {
    double now = 0.0;
    double drive = 0.0;
    TeamMode mode = TeamMode::kIdle;
  };
  class CapturingDispatcher : public Dispatcher {
   public:
    explicit CapturingDispatcher(roadnet::SegmentId target)
        : target_(target) {}
    std::string name() const override { return "capture"; }
    DispatchDecision Decide(const DispatchContext& context) override {
      records.push_back({context.now, context.teams[0].drive_time_since_dispatch,
                         context.teams[0].mode});
      DispatchDecision d;
      d.actions.resize(context.teams.size());
      if (records.size() == 1) d.actions[0] = {ActionKind::kGoto, target_};
      return d;
    }
    std::vector<Record> records;

   private:
    roadnet::SegmentId target_;
  };

  RescueSimulator sim(city_, *flood_, requests, 0.0, config);
  CapturingDispatcher dispatcher(seg);
  sim.Run(dispatcher);

  const Request& r = sim.requests()[0];
  ASSERT_NE(r.status, RequestStatus::kPending) << "request never reached";
  const double completion = r.pickup_time;  // drive toward assignment ends
  ASSERT_GT(completion, 0.0);

  // Find the first round at/after completion; the round before it started
  // a fresh accounting period (the kGoto applies at records[0].now with
  // zero latency, and SubmitDecision resets the counter each round).
  std::size_t j = 0;
  while (j < dispatcher.records.size() &&
         dispatcher.records[j].now < completion) {
    ++j;
  }
  ASSERT_GT(j, 0u);
  ASSERT_LT(j, dispatcher.records.size());
  // Exact equality: the counter is completion - prev_round, not a
  // step-quantized overcount (the hospital leg after completion does not
  // accrue — it is the service, not the Eq. (5) driving delay).
  EXPECT_EQ(dispatcher.records[j].drive,
            completion - dispatcher.records[j - 1].now);
  // Rounds fully spent driving charge exactly the period, never more.
  for (std::size_t i = 1; i < j; ++i) {
    if (dispatcher.records[i - 1].mode == TeamMode::kToTarget) {
      EXPECT_LE(dispatcher.records[i].drive,
                dispatcher.records[i].now - dispatcher.records[i - 1].now);
    }
  }
}

// Regression (mid-step condition staleness): openness and travel time are
// evaluated once, at segment entry, against the condition epoch in force
// at that instant. A traversal that crosses an hourly flood epoch keeps
// the entry-time travel time; it is not re-evaluated against the new
// epoch mid-flight.
TEST_F(SimulatorTest, SegmentTravelUsesEntryTimeCondition) {
  // A storm overlapping the day, so hourly epochs actually differ.
  weather::ScenarioSpec spec = weather::TestScenario();
  spec.storm.storm_begin_s = 0.1 * util::kSecondsPerDay;
  spec.storm.storm_peak_s = 0.5 * util::kSecondsPerDay;
  spec.storm.storm_end_s = 1.2 * util::kSecondsPerDay;
  weather::WeatherField field(city_.box, spec.storm);
  weather::FloodModel flood(field, city_.terrain);

  SimConfig config;
  config.num_teams = 1;
  config.horizon_s = util::kSecondsPerDay;

  // Where does the (single) team start?
  roadnet::LandmarkId start;
  {
    RescueSimulator probe(city_, flood, {}, 0.0, config);
    start = probe.teams()[0].at;
  }

  // Find an adjacent segment (route is then just the segment itself, so
  // the team enters it exactly when the dispatch decision applies) and an
  // hour boundary E across which its speed factor changes, with the
  // traversal long enough to span E.
  RescueSimulator finder(city_, flood, {}, 0.0, config);
  roadnet::SegmentId target = roadnet::kInvalidSegment;
  double entry_boundary = 0.0;
  double expected_travel = 0.0;
  for (int hour = 2; hour < 22 && target == roadnet::kInvalidSegment;
       ++hour) {
    const double epoch = hour * util::kSecondsPerHour;
    const roadnet::NetworkCondition& before = finder.ConditionAt(epoch - 10.0);
    const roadnet::NetworkCondition& after = finder.ConditionAt(epoch + 10.0);
    for (const roadnet::RoadSegment& seg : city_.network.segments()) {
      if (seg.from != start) continue;
      if (!before.IsOpen(seg.id)) continue;
      const double travel =
          seg.length_m / (seg.speed_limit_mps * before.SpeedFactor(seg.id));
      if (travel < 40.0 || travel > 3000.0) continue;
      if (std::abs(before.SpeedFactor(seg.id) - after.SpeedFactor(seg.id)) <
          1e-9) {
        continue;
      }
      target = seg.id;
      entry_boundary = epoch - 10.0;  // last step boundary before the flip
      expected_travel = travel;
      break;
    }
  }
  ASSERT_NE(target, roadnet::kInvalidSegment)
      << "no epoch-crossing segment found; storm spec needs adjusting";

  // Request waits at the far end of the target segment.
  std::vector<Request> requests = {MakeRequest(0, 60.0, target)};
  requests[0].pos =
      city_.network.landmark(city_.network.segment(target).to).pos;

  // Dispatch so the decision applies exactly at entry_boundary: the round
  // at (entry_boundary - 290), a multiple of 300, plus 290 s of compute
  // latency lands the action on the last step boundary before the flip.
  const double goto_round = entry_boundary - 290.0;
  class TimedDispatcher : public Dispatcher {
   public:
    TimedDispatcher(double when, roadnet::SegmentId target)
        : when_(when), target_(target) {}
    std::string name() const override { return "timed"; }
    DispatchDecision Decide(const DispatchContext& context) override {
      DispatchDecision d;
      d.actions.resize(context.teams.size());
      if (context.now == when_) {
        d.actions[0] = {ActionKind::kGoto, target_};
        d.compute_latency_s = 290.0;
      }
      return d;
    }

   private:
    double when_;
    roadnet::SegmentId target_;
  };

  RescueSimulator sim(city_, flood, requests, 0.0, config);
  TimedDispatcher dispatcher(goto_round, target);
  sim.Run(dispatcher);

  const Request& r = sim.requests()[0];
  ASSERT_NE(r.status, RequestStatus::kPending);
  // Arrival (== pickup at the far endpoint) is entry + travel-at-entry,
  // bit-exactly, even though the traversal crossed into an epoch with a
  // different speed factor.
  EXPECT_EQ(r.pickup_time, entry_boundary + expected_travel);
}

// Regression (pending-index dedup): requests are indexed once, under their
// pickup landmark; the context's pending list is sorted, duplicate-free
// and complete without any per-round sort/unique pass.
TEST_F(SimulatorTest, PendingContextListSortedUniqueComplete) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  // Appear order deliberately scrambled relative to id order.
  std::vector<Request> requests = {
      MakeRequest(0, 500.0, seg), MakeRequest(1, 90.0, seg),
      MakeRequest(2, 700.0, seg), MakeRequest(3, 60.0, seg),
      MakeRequest(4, 250.0, seg)};

  class PendingAudit : public Dispatcher {
   public:
    std::string name() const override { return "audit"; }
    DispatchDecision Decide(const DispatchContext& context) override {
      for (std::size_t i = 1; i < context.pending.size(); ++i) {
        sorted_unique &=
            context.pending[i - 1].id < context.pending[i].id;
      }
      max_pending = std::max(max_pending, context.pending.size());
      DispatchDecision d;
      d.actions.resize(context.teams.size());
      return d;
    }
    bool sorted_unique = true;
    std::size_t max_pending = 0;
  };

  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
  PendingAudit dispatcher;
  sim.Run(dispatcher);
  EXPECT_TRUE(dispatcher.sorted_unique);
  EXPECT_EQ(dispatcher.max_pending, requests.size());
}

}  // namespace
}  // namespace mobirescue::sim
