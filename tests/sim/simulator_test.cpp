#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "weather/scenario.hpp"

namespace mobirescue::sim {
namespace {

/// A dispatcher scripted from outside: returns pre-programmed actions.
class ScriptedDispatcher : public Dispatcher {
 public:
  std::string name() const override { return "scripted"; }
  DispatchDecision Decide(const DispatchContext& context) override {
    ++rounds;
    last_pending = context.pending.size();
    DispatchDecision d;
    d.compute_latency_s = latency_s;
    d.actions.resize(context.teams.size());
    if (!script.empty()) {
      for (std::size_t k = 0; k < d.actions.size() && k < script.size(); ++k) {
        d.actions[k] = script[k];
      }
      if (!repeat) script.clear();
    }
    return d;
  }

  std::vector<TeamAction> script;
  bool repeat = false;
  double latency_s = 0.0;
  int rounds = 0;
  std::size_t last_pending = 0;
};

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : spec_(weather::TestScenario()) {
    roadnet::CityConfig config;
    config.grid_width = 8;
    config.grid_height = 8;
    config.num_hospitals = 3;
    city_ = roadnet::BuildCity(config);
    // A storm far in the future: the network stays fully open.
    spec_.storm.storm_begin_s = 50 * util::kSecondsPerDay;
    spec_.storm.storm_peak_s = 51 * util::kSecondsPerDay;
    spec_.storm.storm_end_s = 52 * util::kSecondsPerDay;
    field_ = std::make_unique<weather::WeatherField>(city_.box, spec_.storm);
    flood_ = std::make_unique<weather::FloodModel>(*field_, city_.terrain);
  }

  Request MakeRequest(int id, double t, roadnet::SegmentId seg) {
    Request r;
    r.id = id;
    r.appear_time = t;
    r.segment = seg;
    r.pos = city_.network.SegmentMidpoint(seg);
    r.region = city_.network.segment(seg).region;
    return r;
  }

  SimConfig FastConfig(int teams = 2) {
    SimConfig config;
    config.num_teams = teams;
    config.horizon_s = 6 * 3600.0;
    config.dispatch_period_s = 300.0;
    return config;
  }

  /// A segment whose entry landmark differs from every hospital.
  roadnet::SegmentId NonHospitalSegment() const {
    for (const roadnet::RoadSegment& seg : city_.network.segments()) {
      bool touches_hospital = false;
      for (roadnet::LandmarkId h : city_.hospitals) {
        if (seg.from == h || seg.to == h) touches_hospital = true;
      }
      if (!touches_hospital) return seg.id;
    }
    return 0;
  }

  weather::ScenarioSpec spec_;
  roadnet::City city_;
  std::unique_ptr<weather::WeatherField> field_;
  std::unique_ptr<weather::FloodModel> flood_;
};

TEST_F(SimulatorTest, TeamsStartAtHospitals) {
  RescueSimulator sim(city_, *flood_, {}, 0.0, FastConfig(10));
  for (const Team& team : sim.teams()) {
    EXPECT_NE(std::find(city_.hospitals.begin(), city_.hospitals.end(),
                        team.at),
              city_.hospitals.end());
    EXPECT_EQ(team.mode, TeamMode::kIdle);
    EXPECT_EQ(team.capacity, FastConfig().team_capacity);
  }
}

TEST_F(SimulatorTest, ScriptedGotoServesRequest) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));

  ScriptedDispatcher dispatcher;
  dispatcher.script = {{ActionKind::kGoto, seg}};
  dispatcher.repeat = true;
  const MetricsCollector metrics = sim.Run(dispatcher);

  EXPECT_EQ(metrics.total_served(), 1);
  EXPECT_EQ(metrics.total_delivered(), 1);
  const Request& served = sim.requests()[0];
  EXPECT_EQ(served.status, RequestStatus::kDelivered);
  EXPECT_GT(served.pickup_time, served.appear_time - 1e-9);
  EXPECT_GT(served.delivery_time, served.pickup_time);
  EXPECT_EQ(served.served_by_team, 0);
}

TEST_F(SimulatorTest, KeepDispatcherServesNothingRemote) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
  ScriptedDispatcher dispatcher;  // all kKeep forever
  const MetricsCollector metrics = sim.Run(dispatcher);
  EXPECT_EQ(metrics.total_served(), 0);
  EXPECT_EQ(sim.requests()[0].status, RequestStatus::kPending);
}

TEST_F(SimulatorTest, DispatchLatencyDelaysService) {
  const roadnet::SegmentId seg = NonHospitalSegment();

  auto run_with_latency = [&](double latency) {
    std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
    RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
    ScriptedDispatcher dispatcher;
    dispatcher.script = {{ActionKind::kGoto, seg}};
    dispatcher.repeat = true;
    dispatcher.latency_s = latency;
    sim.Run(dispatcher);
    return sim.requests()[0].pickup_time;
  };

  const double fast = run_with_latency(0.5);
  const double slow = run_with_latency(900.0);
  EXPECT_GT(slow, fast + 400.0);
}

TEST_F(SimulatorTest, InstantPickupWhenTeamAlreadyThere) {
  // Request at a landmark where an idle team is parked: picked up the
  // moment it appears (the paper's zero-timeliness case).
  roadnet::SegmentId seg = roadnet::kInvalidSegment;
  roadnet::LandmarkId where = roadnet::kInvalidLandmark;
  SimConfig config = FastConfig(8);  // enough teams to cover hospitals
  RescueSimulator probe(city_, *flood_, {}, 0.0, config);
  for (const roadnet::RoadSegment& s : city_.network.segments()) {
    for (const Team& team : probe.teams()) {
      if (s.from == team.at) {
        seg = s.id;
        where = team.at;
      }
    }
    if (seg != roadnet::kInvalidSegment) break;
  }
  ASSERT_NE(seg, roadnet::kInvalidSegment);

  std::vector<Request> requests = {MakeRequest(0, 1000.0, seg)};
  // Person stands exactly at the team's landmark.
  requests[0].pos = city_.network.landmark(where).pos;
  RescueSimulator sim(city_, *flood_, requests, 0.0, config);
  ScriptedDispatcher dispatcher;
  sim.Run(dispatcher);
  const Request& r = sim.requests()[0];
  EXPECT_EQ(r.status, RequestStatus::kDelivered);
  EXPECT_NEAR(r.pickup_time, r.appear_time, 1e-6);
  EXPECT_DOUBLE_EQ(r.driving_delay_s, 0.0);
}

TEST_F(SimulatorTest, CapacityBoundsOnboard) {
  // 7 requests on one segment, capacity 5: first trip takes at most 5.
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests;
  for (int i = 0; i < 7; ++i) requests.push_back(MakeRequest(i, 60.0, seg));
  SimConfig config = FastConfig(1);
  RescueSimulator sim(city_, *flood_, requests, 0.0, config);
  ScriptedDispatcher dispatcher;
  dispatcher.script = {{ActionKind::kGoto, seg}};
  dispatcher.repeat = true;
  const MetricsCollector metrics = sim.Run(dispatcher);
  // The single team shuttles: all 7 eventually served over 6 hours.
  EXPECT_EQ(metrics.total_served(), 7);
  EXPECT_EQ(metrics.total_delivered(), 7);
}

TEST_F(SimulatorTest, DepotActionPutsTeamAtDepot) {
  RescueSimulator sim(city_, *flood_, {}, 0.0, FastConfig(1));
  ScriptedDispatcher dispatcher;
  dispatcher.script = {{ActionKind::kDepot, roadnet::kInvalidSegment}};
  dispatcher.repeat = true;
  sim.Run(dispatcher);
  EXPECT_EQ(sim.teams()[0].at, city_.depot);
  EXPECT_EQ(sim.teams()[0].mode, TeamMode::kIdle);
}

TEST_F(SimulatorTest, PendingListedInContext) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg),
                                   MakeRequest(1, 90.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
  ScriptedDispatcher dispatcher;  // never serves
  sim.Run(dispatcher);
  EXPECT_EQ(dispatcher.last_pending, 2u);
  EXPECT_GT(dispatcher.rounds, 10);
}

TEST_F(SimulatorTest, ServedRequestsAreTimelyWithinThreshold) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(2));
  ScriptedDispatcher dispatcher;
  dispatcher.script = {{ActionKind::kGoto, seg}, {ActionKind::kKeep}};
  dispatcher.repeat = true;
  const MetricsCollector metrics = sim.Run(dispatcher);
  ASSERT_EQ(metrics.total_served(), 1);
  const double timeliness = sim.requests()[0].pickup_time - 60.0;
  EXPECT_EQ(metrics.total_timely(), timeliness <= 1800.0 ? 1 : 0);
}

// The incremental serving API (NextRound/SubmitDecision) must be
// round-for-round identical to Run() — the online DispatchService relies
// on it (DESIGN.md §11).
TEST_F(SimulatorTest, IncrementalDrivingMatchesRun) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  auto make_requests = [&] {
    return std::vector<Request>{MakeRequest(0, 60.0, seg),
                                MakeRequest(1, 3600.0, seg),
                                MakeRequest(2, 7500.0, seg)};
  };
  auto make_dispatcher = [&] {
    ScriptedDispatcher d;
    d.script = {{ActionKind::kGoto, seg}, {ActionKind::kKeep}};
    d.repeat = true;
    d.latency_s = 30.0;  // exercises the pending-decision queue
    return d;
  };

  RescueSimulator batch(city_, *flood_, make_requests(), 0.0, FastConfig(2));
  ScriptedDispatcher batch_dispatcher = make_dispatcher();
  const MetricsCollector batch_metrics = batch.Run(batch_dispatcher);

  RescueSimulator step(city_, *flood_, make_requests(), 0.0, FastConfig(2));
  ScriptedDispatcher step_dispatcher = make_dispatcher();
  DispatchContext ctx;
  int rounds = 0;
  while (step.NextRound(step_dispatcher, &ctx)) {
    ++rounds;
    step.SubmitDecision(step_dispatcher.Decide(ctx));
  }

  EXPECT_EQ(rounds, batch_dispatcher.rounds);
  EXPECT_EQ(step.metrics().total_served(), batch_metrics.total_served());
  EXPECT_EQ(step.metrics().total_timely(), batch_metrics.total_timely());
  ASSERT_EQ(step.requests().size(), batch.requests().size());
  for (std::size_t i = 0; i < step.requests().size(); ++i) {
    EXPECT_EQ(step.requests()[i].status, batch.requests()[i].status) << i;
    EXPECT_EQ(step.requests()[i].pickup_time, batch.requests()[i].pickup_time)
        << i;
    EXPECT_EQ(step.requests()[i].delivery_time,
              batch.requests()[i].delivery_time)
        << i;
    EXPECT_EQ(step.requests()[i].served_by_team,
              batch.requests()[i].served_by_team)
        << i;
  }
  for (std::size_t k = 0; k < step.teams().size(); ++k) {
    EXPECT_EQ(step.teams()[k].at, batch.teams()[k].at) << "team " << k;
    EXPECT_EQ(step.teams()[k].mode, batch.teams()[k].mode) << "team " << k;
  }
}

TEST_F(SimulatorTest, NextRoundIsReentrantUntilSubmit) {
  const roadnet::SegmentId seg = NonHospitalSegment();
  std::vector<Request> requests = {MakeRequest(0, 60.0, seg)};
  RescueSimulator sim(city_, *flood_, requests, 0.0, FastConfig(1));
  ScriptedDispatcher dispatcher;

  DispatchContext a, b;
  ASSERT_TRUE(sim.NextRound(dispatcher, &a));
  // Without SubmitDecision, the same due round is surfaced again at the
  // same clock.
  ASSERT_TRUE(sim.NextRound(dispatcher, &b));
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.teams.size(), b.teams.size());
  EXPECT_EQ(sim.now(), a.now);

  sim.SubmitDecision(dispatcher.Decide(b));
  ASSERT_TRUE(sim.NextRound(dispatcher, &a));
  EXPECT_GT(a.now, b.now);  // the clock moved to the next period
}

}  // namespace
}  // namespace mobirescue::sim
