// Bitwise parity of the SoA geo kernels (util/geo_batch.hpp) against their
// scalar references: identical inputs must produce identical bits, not just
// nearby doubles — the contract that lets the batched hot paths replace the
// scalar ones anywhere without changing a single result.
#include "util/geo_batch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/geo.hpp"
#include "util/rng.hpp"

namespace mobirescue::util {
namespace {

struct SoaPoints {
  std::vector<double> lat, lon;
};

SoaPoints RandomPoints(Rng& rng, std::size_t n, const BoundingBox& box) {
  SoaPoints pts;
  pts.lat.reserve(n);
  pts.lon.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.lat.push_back(rng.Uniform(box.south_west.lat, box.north_east.lat));
    pts.lon.push_back(rng.Uniform(box.south_west.lon, box.north_east.lon));
  }
  return pts;
}

class GeoBatchTest : public ::testing::Test {
 protected:
  Rng rng_{2024};
  BoundingBox box_ = kCharlotteCropBox;
};

TEST_F(GeoBatchTest, ApproxDistanceMatchesScalarBitwise) {
  const SoaPoints pts = RandomPoints(rng_, 4096, box_);
  const GeoPoint ref{box_.At(0.37, 0.81)};
  std::vector<double> batch(pts.lat.size());
  ApproxDistanceMetersBatch(pts.lat.data(), pts.lon.data(), pts.lat.size(),
                            ref, batch.data());
  for (std::size_t i = 0; i < pts.lat.size(); ++i) {
    const double scalar =
        ApproxDistanceMeters({pts.lat[i], pts.lon[i]}, ref);
    ASSERT_EQ(scalar, batch[i]) << "element " << i;
  }
}

TEST_F(GeoBatchTest, HaversineMatchesScalarBitwise) {
  const SoaPoints pts = RandomPoints(rng_, 4096, box_);
  const GeoPoint ref{box_.At(0.12, 0.44)};
  std::vector<double> batch(pts.lat.size());
  HaversineMetersBatch(pts.lat.data(), pts.lon.data(), pts.lat.size(), ref,
                       batch.data());
  for (std::size_t i = 0; i < pts.lat.size(); ++i) {
    const double scalar = HaversineMeters({pts.lat[i], pts.lon[i]}, ref);
    ASSERT_EQ(scalar, batch[i]) << "element " << i;
  }
}

TEST_F(GeoBatchTest, PointToSegmentMatchesScalarBitwise) {
  const SoaPoints a = RandomPoints(rng_, 2048, box_);
  const SoaPoints b = RandomPoints(rng_, 2048, box_);
  const GeoPoint p{box_.At(0.5, 0.5)};
  std::vector<double> batch(a.lat.size());
  PointToSegmentMetersBatch(p, a.lat.data(), a.lon.data(), b.lat.data(),
                            b.lon.data(), a.lat.size(), batch.data());
  for (std::size_t i = 0; i < a.lat.size(); ++i) {
    const double scalar = PointToSegmentMeters(
        p, {a.lat[i], a.lon[i]}, {b.lat[i], b.lon[i]});
    ASSERT_EQ(scalar, batch[i]) << "element " << i;
  }
}

TEST_F(GeoBatchTest, DegenerateSegmentsMatchScalar) {
  // Zero-length segments exercise the len2 == 0 branch.
  const SoaPoints a = RandomPoints(rng_, 256, box_);
  std::vector<double> batch(a.lat.size());
  const GeoPoint p{box_.At(0.9, 0.1)};
  PointToSegmentMetersBatch(p, a.lat.data(), a.lon.data(), a.lat.data(),
                            a.lon.data(), a.lat.size(), batch.data());
  for (std::size_t i = 0; i < a.lat.size(); ++i) {
    const double scalar = PointToSegmentMeters(
        p, {a.lat[i], a.lon[i]}, {a.lat[i], a.lon[i]});
    ASSERT_EQ(scalar, batch[i]) << "element " << i;
  }
}

TEST_F(GeoBatchTest, EmptyBatchIsANoOp) {
  double sentinel = -1.0;
  ApproxDistanceMetersBatch(nullptr, nullptr, 0, {0.0, 0.0}, &sentinel);
  HaversineMetersBatch(nullptr, nullptr, 0, {0.0, 0.0}, &sentinel);
  EXPECT_EQ(sentinel, -1.0);
}

}  // namespace
}  // namespace mobirescue::util
