#include "util/geo.hpp"

#include <gtest/gtest.h>

namespace mobirescue::util {
namespace {

TEST(GeoTest, HaversineZeroForSamePoint) {
  const GeoPoint p{35.7, -78.9};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(GeoTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  const GeoPoint a{35.0, -78.0};
  const GeoPoint b{36.0, -78.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111195.0, 200.0);
}

TEST(GeoTest, HaversineSymmetric) {
  const GeoPoint a{35.61, -79.0};
  const GeoPoint b{35.9, -78.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(GeoTest, ApproxDistanceMatchesHaversineAtCityScale) {
  const GeoPoint a{35.65, -79.05};
  const GeoPoint b{35.78, -78.70};
  const double h = HaversineMeters(a, b);
  const double e = ApproxDistanceMeters(a, b);
  EXPECT_NEAR(e / h, 1.0, 1e-3);
}

TEST(GeoTest, LerpEndpointsAndMidpoint) {
  const GeoPoint a{35.0, -79.0};
  const GeoPoint b{36.0, -78.0};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  const GeoPoint mid = Lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.lat, 35.5);
  EXPECT_DOUBLE_EQ(mid.lon, -78.5);
}

TEST(GeoTest, BoundingBoxContains) {
  EXPECT_TRUE(kCharlotteBox.Contains({35.8, -78.6}));
  EXPECT_FALSE(kCharlotteBox.Contains({34.0, -78.6}));
  EXPECT_FALSE(kCharlotteBox.Contains({35.8, -80.0}));
  // Corners are inclusive.
  EXPECT_TRUE(kCharlotteBox.Contains(kCharlotteBox.south_west));
  EXPECT_TRUE(kCharlotteBox.Contains(kCharlotteBox.north_east));
}

TEST(GeoTest, BoundingBoxAtMapsUnitSquare) {
  const GeoPoint sw = kCharlotteCropBox.At(0.0, 0.0);
  const GeoPoint ne = kCharlotteCropBox.At(1.0, 1.0);
  EXPECT_DOUBLE_EQ(sw.lat, kCharlotteCropBox.south_west.lat);
  EXPECT_DOUBLE_EQ(sw.lon, kCharlotteCropBox.south_west.lon);
  EXPECT_DOUBLE_EQ(ne.lat, kCharlotteCropBox.north_east.lat);
  EXPECT_DOUBLE_EQ(ne.lon, kCharlotteCropBox.north_east.lon);
}

TEST(GeoTest, BoundingBoxDimensionsPositive) {
  EXPECT_GT(kCharlotteCropBox.WidthMeters(), 10000.0);
  EXPECT_GT(kCharlotteCropBox.HeightMeters(), 10000.0);
  EXPECT_LT(kCharlotteCropBox.WidthMeters(), kCharlotteBox.WidthMeters());
}

TEST(GeoTest, PointToSegmentProjectionInterior) {
  // Horizontal segment; point above its middle.
  const GeoPoint a{35.70, -79.00};
  const GeoPoint b{35.70, -78.90};
  const GeoPoint p{35.72, -78.95};
  double t = -1.0;
  const double d = PointToSegmentMeters(p, a, b, &t);
  EXPECT_NEAR(t, 0.5, 0.02);
  EXPECT_NEAR(d, ApproxDistanceMeters({35.70, -78.95}, p), 30.0);
}

TEST(GeoTest, PointToSegmentClampsToEndpoints) {
  const GeoPoint a{35.70, -79.00};
  const GeoPoint b{35.70, -78.90};
  const GeoPoint beyond{35.70, -78.80};
  double t = -1.0;
  const double d = PointToSegmentMeters(beyond, a, b, &t);
  EXPECT_DOUBLE_EQ(t, 1.0);
  EXPECT_NEAR(d, ApproxDistanceMeters(b, beyond), 30.0);
}

TEST(GeoTest, PointToSegmentDegenerateSegment) {
  const GeoPoint a{35.70, -79.00};
  const GeoPoint p{35.71, -79.00};
  double t = -1.0;
  const double d = PointToSegmentMeters(p, a, a, &t);
  EXPECT_DOUBLE_EQ(t, 0.0);
  EXPECT_NEAR(d, ApproxDistanceMeters(a, p), 5.0);
}

}  // namespace
}  // namespace mobirescue::util
