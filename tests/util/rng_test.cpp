#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace mobirescue::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, PoissonMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(19);
  const std::array<double, 3> weights = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.WeightedIndex(std::span<const double>(weights))];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.25);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(23);
  const std::array<double, 4> weights = {0.0, 0.0, 0.0, 0.0};
  std::array<int, 4> counts{};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.WeightedIndex(std::span<const double>(weights))];
  }
  for (int c : counts) EXPECT_GT(c, 1500);
}

TEST(RngTest, WeightedIndexRejectsBadInput) {
  Rng rng(29);
  EXPECT_THROW(rng.WeightedIndex({}), std::invalid_argument);
  const std::array<double, 2> negative = {1.0, -0.5};
  EXPECT_THROW(rng.WeightedIndex(std::span<const double>(negative)),
               std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(101);
  Rng child = a.Fork();
  // The child should not replay the parent's stream.
  Rng b(101);
  b.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.UniformInt(0, 1 << 30) == a.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace mobirescue::util
