#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace mobirescue::util {
namespace {

TEST(SimTimeTest, DayIndex) {
  EXPECT_EQ(DayIndex(0.0), 0);
  EXPECT_EQ(DayIndex(kSecondsPerDay - 1), 0);
  EXPECT_EQ(DayIndex(kSecondsPerDay), 1);
  EXPECT_EQ(DayIndex(9.5 * kSecondsPerDay), 9);
}

TEST(SimTimeTest, HourOfDay) {
  EXPECT_EQ(HourOfDay(0.0), 0);
  EXPECT_EQ(HourOfDay(3600.0 * 13 + 100), 13);
  EXPECT_EQ(HourOfDay(kSecondsPerDay + 3600.0 * 5), 5);
  EXPECT_EQ(HourOfDay(kSecondsPerDay - 1.0), 23);
}

TEST(SimTimeTest, HourIndexIsAbsolute) {
  EXPECT_EQ(HourIndex(0.0), 0);
  EXPECT_EQ(HourIndex(kSecondsPerDay + 3600.0 * 5), 29);
}

TEST(SimTimeTest, FormatSimTime) {
  EXPECT_EQ(FormatSimTime(0.0), "d0 00:00:00");
  EXPECT_EQ(FormatSimTime(kSecondsPerDay + 3661.0), "d1 01:01:01");
  EXPECT_EQ(FormatSimTime(-5.0), "d0 00:00:00");  // clamped
}

}  // namespace
}  // namespace mobirescue::util
