#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mobirescue::util {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(StatsTest, StdDevBasics) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(StdDev(std::vector<double>{5.0}), 0.0);
}

TEST(StatsTest, PearsonPerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSeriesIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {5, 5, 5};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(StatsTest, PearsonLengthMismatchThrows) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW(PearsonCorrelation(x, y), std::invalid_argument);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(CdfTest, AtAndQuantile) {
  EmpiricalCdf cdf({4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.At(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.At(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 4.0);
}

TEST(CdfTest, IncrementalAdd) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  cdf.Add(3.0);
  cdf.Add(1.0);
  EXPECT_DOUBLE_EQ(cdf.At(2.0), 0.5);
  cdf.Add(2.0);
  EXPECT_NEAR(cdf.At(2.0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
}

TEST(CdfTest, CurveIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 200; ++i) cdf.Add((i * 37) % 100);
  const auto curve = cdf.Curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
    EXPECT_LT(curve[i - 1].first, curve[i].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 4
  h.Add(-3.0);  // clamped to bin 0
  h.Add(42.0);  // clamped to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(RunningStatsTest, MatchesBatchStats) {
  RunningStats rs;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), Mean(xs));
  EXPECT_NEAR(rs.stddev(), StdDev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
  EXPECT_EQ(rs.count(), 0u);
}

TEST(PercentilesTest, MatchesPerCallPercentile) {
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0};
  const std::vector<double> ps = {0.0, 25.0, 50.0, 90.0, 99.0, 100.0};
  const std::vector<double> got = Percentiles(xs, ps);
  ASSERT_EQ(got.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], Percentile(xs, ps[i])) << "p=" << ps[i];
  }
}

TEST(PercentilesTest, EmptyGivesZeros) {
  const std::vector<double> ps = {50.0, 99.0};
  const std::vector<double> got = Percentiles({}, ps);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], 0.0);
  EXPECT_DOUBLE_EQ(got[1], 0.0);
}

TEST(SummarizeTest, AllFieldsAgreeWithBatchHelpers) {
  const std::vector<double> xs = {4.0, 1.0, 9.0, 2.0, 6.0, 3.0, 8.0, 5.0,
                                  7.0, 10.0};
  const PercentileSummary s = Summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.mean, Mean(xs));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.p50, Percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(s.p90, Percentile(xs, 90.0));
  EXPECT_DOUBLE_EQ(s.p95, Percentile(xs, 95.0));
  EXPECT_DOUBLE_EQ(s.p99, Percentile(xs, 99.0));
}

TEST(PercentilesTest, P0AndP100AreExactBounds) {
  const std::vector<double> xs = {42.0, -3.0, 17.0, 8.0};
  const std::vector<double> ps = {0.0, 100.0};
  const std::vector<double> got = Percentiles(xs, ps);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], -3.0);  // p0 is the minimum, no interpolation
  EXPECT_DOUBLE_EQ(got[1], 42.0);  // p100 is the maximum
}

TEST(PercentilesTest, SingleSampleEveryPercentile) {
  const std::vector<double> one = {7.25};
  const std::vector<double> ps = {0.0, 50.0, 99.9, 100.0};
  const std::vector<double> got = Percentiles(one, ps);
  for (double v : got) EXPECT_DOUBLE_EQ(v, 7.25);
}

TEST(PercentilesTest, DuplicatesCollapseToTheRepeatedValue) {
  const std::vector<double> xs = {5.0, 5.0, 5.0, 5.0, 5.0};
  const std::vector<double> ps = {0.0, 25.0, 50.0, 75.0, 100.0};
  const std::vector<double> got = Percentiles(xs, ps);
  for (double v : got) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(PercentilesTest, PartialDuplicatesStayWithinDataRange) {
  // 1 appears 3x, 9 appears 1x: every percentile must interpolate inside
  // [1, 9] and stay monotone in p.
  const std::vector<double> xs = {1.0, 1.0, 1.0, 9.0};
  const std::vector<double> ps = {0.0, 30.0, 60.0, 90.0, 100.0};
  const std::vector<double> got = Percentiles(xs, ps);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_GE(got[i], 1.0);
    EXPECT_LE(got[i], 9.0);
    if (i > 0) {
      EXPECT_GE(got[i], got[i - 1]);
    }
  }
  EXPECT_DOUBLE_EQ(got.front(), 1.0);
  EXPECT_DOUBLE_EQ(got.back(), 9.0);
}

TEST(SummarizeTest, DuplicateHeavyInput) {
  const std::vector<double> xs = {2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0};
  const PercentileSummary s = Summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
  EXPECT_DOUBLE_EQ(s.p90, 2.0);
  EXPECT_DOUBLE_EQ(s.p95, 2.0);
  EXPECT_DOUBLE_EQ(s.p99, 2.0);
}

TEST(SummarizeTest, EmptyIsAllZeros) {
  const PercentileSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(SummarizeTest, SingleSampleAndEmpty) {
  const std::vector<double> one = {3.5};
  const PercentileSummary s = Summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);

  const PercentileSummary empty = Summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

}  // namespace
}  // namespace mobirescue::util
