#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mobirescue::util {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  TextTable t({"name", "value"});
  t.Row().Cell("alpha").Cell(1.5, 1);
  t.Row().Cell("beta").Cell(std::size_t{42});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, TooManyCellsThrows) {
  TextTable t({"only"});
  t.Row().Cell("x");
  EXPECT_THROW(t.Cell("overflow"), std::logic_error);
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TableTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
}

TEST(TableTest, FigureBanner) {
  std::ostringstream oss;
  PrintFigureBanner(oss, "Figure 9", "served requests");
  EXPECT_NE(oss.str().find("=== Figure 9: served requests ==="),
            std::string::npos);
}

}  // namespace
}  // namespace mobirescue::util
