#include "weather/earthquake.hpp"

#include <gtest/gtest.h>

namespace mobirescue::weather {
namespace {

class EarthquakeTest : public ::testing::Test {
 protected:
  EarthquakeTest()
      : box_(util::kCharlotteCropBox), field_(box_), density_(box_) {}

  util::BoundingBox box_;
  EarthquakeField field_;
  BuildingDensityModel density_;
};

TEST_F(EarthquakeTest, QuietBeforeShock) {
  const util::GeoPoint p = box_.Center();
  EXPECT_DOUBLE_EQ(field_.LocalMagnitudeAt(p, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(field_.IntensityAt(p, 0.0, density_), 0.0);
}

TEST_F(EarthquakeTest, MagnitudeAttenuatesWithDistance) {
  const EarthquakeConfig& config = field_.config();
  const util::GeoPoint epicentre =
      box_.At(config.epicentre_x, config.epicentre_y);
  const util::GeoPoint far = box_.At(0.05, 0.95);
  const double t = config.shock_time_s + 60.0;
  EXPECT_NEAR(field_.LocalMagnitudeAt(epicentre, t), config.magnitude, 0.1);
  EXPECT_LT(field_.LocalMagnitudeAt(far, t),
            field_.LocalMagnitudeAt(epicentre, t) / 2.0);
}

TEST_F(EarthquakeTest, AftershockIntensityDecays) {
  const EarthquakeConfig& config = field_.config();
  const util::GeoPoint p = box_.At(config.epicentre_x, config.epicentre_y);
  const double early =
      field_.IntensityAt(p, config.shock_time_s + 600.0, density_);
  const double later = field_.IntensityAt(
      p, config.shock_time_s + 3 * util::kSecondsPerDay, density_);
  EXPECT_GT(early, later);
  EXPECT_GT(later, 0.0);  // floor term: damage does not vanish entirely
}

TEST_F(EarthquakeTest, BuildingDensityPeaksDowntown) {
  EXPECT_GT(density_.DensityAt(box_.Center()),
            density_.DensityAt(box_.At(0.02, 0.02)));
  for (double x = 0.0; x <= 1.0; x += 0.25) {
    for (double y = 0.0; y <= 1.0; y += 0.25) {
      const double d = density_.DensityAt(box_.At(x, y));
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST_F(EarthquakeTest, RoadDamageConcentratesNearEpicentre) {
  roadnet::CityConfig config;
  config.grid_width = 12;
  config.grid_height = 12;
  const roadnet::City city = roadnet::BuildCity(config);
  EarthquakeField field(city.box);
  BuildingDensityModel density(city.box);

  const auto before =
      EarthquakeNetworkCondition(city.network, field, density, 0.0);
  EXPECT_EQ(before.NumOpen(), city.network.num_segments());

  const auto after = EarthquakeNetworkCondition(
      city.network, field, density, field.config().shock_time_s + 60.0);
  EXPECT_LT(after.NumOpen(), city.network.num_segments());
  // Damaged roads are closer to the epicentre on average than intact ones.
  const util::GeoPoint epi = city.box.At(field.config().epicentre_x,
                                         field.config().epicentre_y);
  double closed_d = 0.0, open_d = 0.0;
  int closed_n = 0, open_n = 0;
  for (const auto& seg : city.network.segments()) {
    const double d =
        util::ApproxDistanceMeters(city.network.SegmentMidpoint(seg.id), epi);
    if (after.IsOpen(seg.id)) {
      open_d += d;
      ++open_n;
    } else {
      closed_d += d;
      ++closed_n;
    }
  }
  ASSERT_GT(closed_n, 0);
  ASSERT_GT(open_n, 0);
  EXPECT_LT(closed_d / closed_n, open_d / open_n);
}

TEST_F(EarthquakeTest, FactorSamplerReturnsAllThreeFactors) {
  roadnet::TerrainModel terrain(box_);
  EarthquakeFactorSampler sampler(field_, terrain, density_);
  const auto f =
      sampler.At(box_.Center(), field_.config().shock_time_s + 60.0);
  EXPECT_GT(f.local_magnitude, 0.0);
  EXPECT_GT(f.altitude_m, 100.0);
  EXPECT_GT(f.building_density, 0.0);
}

}  // namespace
}  // namespace mobirescue::weather
