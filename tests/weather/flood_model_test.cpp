#include "weather/flood_model.hpp"

#include "weather/disaster_factors.hpp"

#include <gtest/gtest.h>

#include "roadnet/city_builder.hpp"
#include "weather/scenario.hpp"

namespace mobirescue::weather {
namespace {

class FloodModelTest : public ::testing::Test {
 protected:
  FloodModelTest()
      : spec_(FlorenceScenario()),
        field_(util::kCharlotteCropBox, spec_.storm),
        terrain_(util::kCharlotteCropBox),
        flood_(field_, terrain_) {}

  ScenarioSpec spec_;
  WeatherField field_;
  roadnet::TerrainModel terrain_;
  FloodModel flood_;
};

TEST_F(FloodModelTest, DryBeforeStorm) {
  for (double x = 0.1; x < 1.0; x += 0.2) {
    for (double y = 0.1; y < 1.0; y += 0.2) {
      EXPECT_DOUBLE_EQ(
          flood_.DepthAt(util::kCharlotteCropBox.At(x, y), 0.0), 0.0);
    }
  }
}

TEST_F(FloodModelTest, LowGroundFloodsAtPeak) {
  // South-east corner: low altitude, heavy rain.
  const util::GeoPoint se = util::kCharlotteCropBox.At(0.9, 0.1);
  const double depth = flood_.DepthAt(se, spec_.storm.storm_end_s);
  EXPECT_GT(depth, flood_.config().zone_depth_m);
}

TEST_F(FloodModelTest, HighGroundStaysDrier) {
  const util::GeoPoint nw = util::kCharlotteCropBox.At(0.1, 0.9);
  const util::GeoPoint se = util::kCharlotteCropBox.At(0.9, 0.1);
  const double t = spec_.storm.storm_end_s;
  EXPECT_LT(flood_.DepthAt(nw, t), flood_.DepthAt(se, t));
}

TEST_F(FloodModelTest, WaterRecedesAfterStorm) {
  const util::GeoPoint se = util::kCharlotteCropBox.At(0.9, 0.1);
  const double at_end = flood_.DepthAt(se, spec_.storm.storm_end_s);
  const double later =
      flood_.DepthAt(se, spec_.storm.storm_end_s + 2 * util::kSecondsPerDay);
  const double much_later =
      flood_.DepthAt(se, spec_.storm.storm_end_s + 6 * util::kSecondsPerDay);
  EXPECT_LT(later, at_end);
  EXPECT_LT(much_later, later);
}

TEST_F(FloodModelTest, FloodZonePredicateMatchesDepth) {
  const util::GeoPoint se = util::kCharlotteCropBox.At(0.9, 0.1);
  const double t = spec_.storm.storm_end_s;
  EXPECT_EQ(flood_.InFloodZone(se, t),
            flood_.DepthAt(se, t) >= flood_.config().zone_depth_m);
  EXPECT_FALSE(flood_.InFloodZone(se, 0.0));
}

TEST_F(FloodModelTest, NetworkConditionDamagesLowSegmentsOnly) {
  roadnet::CityConfig config;
  config.grid_width = 12;
  config.grid_height = 12;
  const roadnet::City city = roadnet::BuildCity(config);
  FloodModel flood(field_, city.terrain);

  const auto before = flood.NetworkConditionAt(city.network, 0.0);
  EXPECT_EQ(before.NumOpen(), city.network.num_segments());

  const auto peak =
      flood.NetworkConditionAt(city.network, spec_.storm.storm_end_s);
  EXPECT_LT(peak.NumOpen(), city.network.num_segments());
  EXPECT_GT(peak.NumOpen(), city.network.num_segments() / 3);

  // A closed segment is either deep water or a debris closure inside the
  // flood zone; open-but-slowed segments are in the zone; dry segments run
  // at full speed.
  for (const roadnet::RoadSegment& seg : city.network.segments()) {
    const double depth = flood.DepthAt(city.network.SegmentMidpoint(seg.id),
                                       spec_.storm.storm_end_s);
    if (!peak.IsOpen(seg.id)) {
      EXPECT_GE(depth, flood.config().zone_depth_m);
    } else if (depth >= flood.config().zone_depth_m) {
      EXPECT_LT(peak.SpeedFactor(seg.id), 1.0);
    } else {
      EXPECT_DOUBLE_EQ(peak.SpeedFactor(seg.id), 1.0);
    }
  }
}

TEST_F(FloodModelTest, FactorSamplerComposesFields) {
  FactorSampler sampler(field_, terrain_);
  const util::GeoPoint p = util::kCharlotteCropBox.Center();
  const FactorVector h = sampler.At(p, spec_.storm.storm_peak_s);
  EXPECT_NEAR(h.precipitation_mm,
              field_.AccumulatedPrecipitation(p, spec_.storm.storm_peak_s),
              1e-12);
  EXPECT_NEAR(h.wind_mph, field_.WindAt(p, spec_.storm.storm_peak_s), 1e-12);
  EXPECT_NEAR(h.altitude_m, terrain_.AltitudeAt(p), 1e-12);
}

}  // namespace
}  // namespace mobirescue::weather
