#include "weather/weather_field.hpp"

#include <gtest/gtest.h>

#include "weather/scenario.hpp"

namespace mobirescue::weather {
namespace {

class WeatherFieldTest : public ::testing::Test {
 protected:
  WeatherFieldTest()
      : spec_(FlorenceScenario()), field_(util::kCharlotteCropBox, spec_.storm) {}

  ScenarioSpec spec_;
  WeatherField field_;
};

TEST_F(WeatherFieldTest, QuietBeforeAndAfterStorm) {
  const util::GeoPoint p = util::kCharlotteCropBox.Center();
  const double before = field_.PrecipitationAt(p, 0.0);
  const double after =
      field_.PrecipitationAt(p, spec_.storm.storm_end_s + 3600.0);
  EXPECT_NEAR(before, spec_.storm.base_precip_mm_per_h, 1e-9);
  EXPECT_NEAR(after, spec_.storm.base_precip_mm_per_h, 1e-9);
}

TEST_F(WeatherFieldTest, PeaksAtStormPeak) {
  const util::GeoPoint p = util::kCharlotteCropBox.Center();
  const double ramp_up =
      field_.PrecipitationAt(p, 0.5 * (spec_.storm.storm_begin_s +
                                       spec_.storm.storm_peak_s));
  const double peak = field_.PrecipitationAt(p, spec_.storm.storm_peak_s);
  const double decay =
      field_.PrecipitationAt(p, 0.5 * (spec_.storm.storm_peak_s +
                                       spec_.storm.storm_end_s));
  EXPECT_GT(peak, ramp_up);
  EXPECT_GT(peak, decay);
  EXPECT_GT(peak, 5.0);
}

TEST_F(WeatherFieldTest, WindTracksSameEnvelope) {
  const util::GeoPoint p = util::kCharlotteCropBox.Center();
  EXPECT_NEAR(field_.WindAt(p, 0.0), spec_.storm.base_wind_mph, 1e-9);
  EXPECT_GT(field_.WindAt(p, spec_.storm.storm_peak_s),
            spec_.storm.base_wind_mph + 10.0);
}

TEST_F(WeatherFieldTest, AccumulationMonotoneNonDecreasing) {
  const util::GeoPoint p = util::kCharlotteCropBox.Center();
  double prev = -1.0;
  for (double t = 0.0; t < 9 * util::kSecondsPerDay; t += 7200.0) {
    const double acc = field_.AccumulatedPrecipitation(p, t);
    EXPECT_GE(acc, prev);
    prev = acc;
  }
}

TEST_F(WeatherFieldTest, AccumulationSaturatesAfterStorm) {
  const util::GeoPoint p = util::kCharlotteCropBox.Center();
  const double at_end = field_.AccumulatedPrecipitation(p, spec_.storm.storm_end_s);
  const double later =
      field_.AccumulatedPrecipitation(p, spec_.storm.storm_end_s + util::kSecondsPerDay);
  EXPECT_NEAR(at_end, later, 1e-9);
  EXPECT_GT(at_end, 50.0);  // a hurricane drops a lot of rain
}

TEST_F(WeatherFieldTest, SouthEastBiasMakesSEWetter) {
  // Averaging over the storm, the south-east corner accumulates more rain
  // than the north-west corner (the Fig. 1 R1-vs-R2 contrast).
  const util::GeoPoint nw = util::kCharlotteCropBox.At(0.1, 0.9);
  const util::GeoPoint se = util::kCharlotteCropBox.At(0.9, 0.1);
  const double t = spec_.storm.storm_end_s;
  EXPECT_GT(field_.AccumulatedPrecipitation(se, t),
            field_.AccumulatedPrecipitation(nw, t));
}

TEST_F(WeatherFieldTest, StormActiveWindow) {
  EXPECT_FALSE(field_.StormActive(0.0));
  EXPECT_TRUE(field_.StormActive(spec_.storm.storm_peak_s));
  EXPECT_FALSE(field_.StormActive(spec_.storm.storm_end_s + 1.0));
}

TEST(WeatherFieldValidationTest, RejectsBadTimeline) {
  StormConfig bad;
  bad.storm_begin_s = 10.0;
  bad.storm_peak_s = 5.0;
  bad.storm_end_s = 20.0;
  EXPECT_THROW(WeatherField(util::kCharlotteCropBox, bad),
               std::invalid_argument);
}

TEST(ScenarioTest, PresetsAreOrdered) {
  for (const ScenarioSpec& spec :
       {FlorenceScenario(), MichaelScenario(), TestScenario()}) {
    EXPECT_LT(spec.storm.storm_begin_s, spec.storm.storm_peak_s);
    EXPECT_LT(spec.storm.storm_peak_s, spec.storm.storm_end_s);
    EXPECT_GT(spec.window_days, 0);
    EXPECT_LT(spec.eval_day, spec.window_days);
  }
}

TEST(ScenarioTest, FlorenceHeavierThanMichael) {
  EXPECT_GT(FlorenceScenario().storm.peak_precip_mm_per_h,
            MichaelScenario().storm.peak_precip_mm_per_h);
}

}  // namespace
}  // namespace mobirescue::weather
